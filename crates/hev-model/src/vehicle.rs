//! The assembled parallel HEV and its backward-looking step function.
//!
//! [`ParallelHev`] couples the engine, electric machine, battery,
//! drivetrain, chassis, and auxiliary systems of §2 of the paper. A
//! controller chooses the battery current `i`, the gear `R(k)`, and the
//! auxiliary power `p_aux` (§2.2); all remaining quantities (engine and
//! machine torques/speeds, fuel rate) are *dependent* variables the model
//! resolves.
//!
//! # Control semantics
//!
//! * **Propelling, engine on** — the commanded current fixes the battery
//!   power; the electric machine converts `P_batt − p_aux`; the engine
//!   supplies the remaining shaft torque exactly.
//! * **Propelling, engine off (EV)** — if the implied engine torque falls
//!   below [`ICE_ON_MIN_NM`] (i.e. the electric path covers the demand),
//!   the engine disengages and the *battery current follows the demand*;
//!   the commanded current is an upper bound on discharge and the realized
//!   current is reported in the outcome.
//! * **Braking** — fuel is cut; the commanded current is a regeneration
//!   *intent*, clamped to what the braking demand and machine envelope
//!   admit; friction brakes absorb the remainder and the realized current
//!   is reported in the outcome.
//! * **Stopped** — the engine is off (automatic stop-start) and the
//!   battery powers the auxiliary load regardless of the commanded
//!   current.
//!
//! Any action that cannot be realized (torque/speed/current/window limits)
//! returns an [`InfeasibleControl`]; controllers use
//! [`ParallelHev::peek`] as an action mask.

use crate::aux::AuxiliarySystems;
use crate::battery::Battery;
use crate::drivetrain::Drivetrain;
use crate::dynamics::{VehicleBody, WheelDemand};
use crate::error::{InfeasibleControl, ParamError};
use crate::ice::Engine;
use crate::motor::Motor;
use crate::params::HevParams;
use serde::{Deserialize, Serialize};

/// Engine torque below which the engine shuts off and the step is
/// realized in EV mode, N·m.
pub const ICE_ON_MIN_NM: f64 = 1.0;
/// Vehicle speed below which the vehicle counts as stopped, m/s.
pub const STOP_SPEED_MPS: f64 = 0.05;
/// Torque tolerance used for mode classification, N·m.
const TORQUE_EPS: f64 = 1e-6;

/// The control variables chosen by an HEV controller (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlInput {
    /// Battery current `i`, A; positive discharges (paper convention).
    pub battery_current_a: f64,
    /// Gear index `k` (0-based).
    pub gear: usize,
    /// Auxiliary operating power `p_aux`, W.
    pub p_aux_w: f64,
}

impl ControlInput {
    /// Whether both float fields are finite — the first check every
    /// safety layer (supervisor, serving ladder) applies before probing
    /// feasibility, since a NaN control would poison the plant state.
    pub fn is_finite(&self) -> bool {
        self.battery_current_a.is_finite() && self.p_aux_w.is_finite()
    }
}

/// The realized operating mode of one step (the paper's five modes from
/// §2, plus `Stopped` and `FrictionBraking` bookkeeping states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatingMode {
    /// Vehicle at rest; engine off; battery powers auxiliaries.
    Stopped,
    /// Mode (i): only the engine propels the vehicle.
    IceOnly,
    /// Mode (ii): only the electric machine propels the vehicle.
    EvOnly,
    /// Mode (iii): engine and machine propel together.
    HybridAssist,
    /// Mode (iv): the engine propels and charges the battery.
    RechargeDrive,
    /// Mode (v): regenerative braking.
    RegenBraking,
    /// Braking absorbed entirely by friction brakes.
    FrictionBraking,
}

/// Everything that happened in one realized step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// The realized operating mode.
    pub mode: OperatingMode,
    /// Fuel mass flow, g/s.
    pub fuel_rate_g_per_s: f64,
    /// Fuel consumed this step, g (includes the restart penalty when the
    /// engine started this step).
    pub fuel_g: f64,
    /// Whether the engine transitioned from stopped to running this step.
    pub engine_started: bool,
    /// Engine torque, N·m (0 when off).
    pub ice_torque_nm: f64,
    /// Engine speed, rad/s (0 when off).
    pub ice_speed_rad_s: f64,
    /// Machine torque, N·m.
    pub em_torque_nm: f64,
    /// Machine speed, rad/s.
    pub em_speed_rad_s: f64,
    /// Realized battery current, A (may differ from the commanded current
    /// in EV and stopped modes).
    pub battery_current_a: f64,
    /// Battery terminal power, W.
    pub battery_power_w: f64,
    /// Auxiliary power, W.
    pub p_aux_w: f64,
    /// Utility `f_aux(p_aux)` of the auxiliary systems this step.
    pub aux_utility: f64,
    /// Friction-brake torque at the wheels, N·m (≤ 0).
    pub friction_brake_torque_nm: f64,
    /// State of charge before the step.
    pub soc_before: f64,
    /// State of charge after the step.
    pub soc_after: f64,
}

/// Which of the three top-level demand regimes a step falls into; decides
/// which completion path [`ParallelHev::peek_with_context`] takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepKind {
    /// `speed < STOP_SPEED_MPS`: stopped-mode resolution (no per-gear
    /// kinematics — the resolution depends only on battery state).
    Stopped,
    /// Negative wheel torque: braking split per gear.
    Braking,
    /// Everything else: propelling (engine-on or EV) per gear.
    Propelling,
}

/// Per-gear precomputation shared by every control evaluated against one
/// demand: shaft kinematics, machine envelope and fixed losses, engine
/// speed/WOT torque, the EV-mode torque solution, and the braking regen
/// floor. All values are exactly the ones the monolithic resolvers would
/// compute, stored as whole results of the same pure calls, so completing
/// a control against a `GearPre` is bit-identical to resolving it from
/// scratch. Fields that don't apply to the entry's mode are left zeroed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct GearPre {
    /// Machine speed `ω_EM` for this gear, rad/s.
    w_em: f64,
    /// Pre-resolved machine overspeed error, if any.
    motor_speed_err: Option<InfeasibleControl>,
    /// Required gearbox-input shaft torque, N·m.
    t_shaft: f64,
    /// Speed-dependent machine losses at `ω_EM`, W.
    fixed_loss_w: f64,
    // ---- propelling only -------------------------------------------------
    /// Machine torque envelope at `ω_EM`, N·m.
    t_em_min: f64,
    /// Machine torque envelope at `ω_EM`, N·m.
    t_em_max: f64,
    /// Engine speed (idle-clamped), rad/s.
    w_ice: f64,
    /// Pre-resolved engine overspeed error, if any.
    engine_speed_err: Option<InfeasibleControl>,
    /// Wide-open-throttle engine torque at `w_ice`, N·m.
    t_ice_max: f64,
    /// Speed parabola of the engine efficiency surface at `w_ice`.
    ice_speed_factor: f64,
    /// Machine torque that covers the whole demand in EV mode, N·m.
    t_em_ev: f64,
    /// Pre-resolved EV-mode torque-envelope error, if any.
    ev_torque_err: Option<InfeasibleControl>,
    /// Machine electrical power in EV mode, W.
    p_em_elec_ev: f64,
    // ---- braking only ----------------------------------------------------
    /// Most negative admissible regen torque, N·m.
    regen_floor: f64,
}

/// Precomputed per-demand evaluation context: the first stage of the
/// staged step pipeline.
///
/// Building a context performs, once per `(demand)`, all the work of
/// [`ParallelHev::peek`] that does not depend on the control input —
/// per-gear shaft speed/torque, machine envelopes, engine speed and WOT
/// torque, the EV-mode solution, and the braking regen floor. The cheap
/// completion stage ([`ParallelHev::peek_with_context`]) then applies a
/// concrete `(battery_current, gear, p_aux)` against the precomputed gear
/// entry. Controllers that evaluate hundreds of candidate controls per
/// simulation step (feasibility masks, inner optimization, argmax) build
/// the context once and amortize the kinematics across all of them.
///
/// The context is **battery-state independent**: completions read the live
/// battery (SOC, thermal state) exactly like the monolithic path, so one
/// context stays valid across SOC sweeps (e.g. a DP solver's state grid)
/// as long as the demand and the vehicle's static parameters are
/// unchanged. Reuse the allocation across steps with
/// [`ParallelHev::rebuild_context`].
#[derive(Debug, Clone, PartialEq)]
pub struct StepContext {
    demand: WheelDemand,
    pub(crate) kind: StepKind,
    pub(crate) gears: Vec<GearPre>,
}

impl StepContext {
    /// The wheel demand this context was built for.
    pub fn demand(&self) -> &WheelDemand {
        &self.demand
    }

    /// Whether the context resolves in stopped mode (no per-gear
    /// kinematics; the commanded current is ignored).
    #[inline]
    pub fn is_stopped(&self) -> bool {
        self.kind == StepKind::Stopped
    }

    /// Whether *any* control input can complete at this gear: `false`
    /// when a control-independent check (machine overspeed — the first
    /// check of every moving completion) already failed during
    /// precomputation, so every completion would replay the same error.
    /// Optimizers sweeping `(gear, …)` candidates skip dead gears
    /// without paying for an evaluation; skipped gears can never
    /// contribute a feasible candidate, so the selected optimum is
    /// unchanged.
    #[inline]
    pub fn gear_is_viable(&self, gear: usize) -> bool {
        match self.kind {
            StepKind::Stopped => true,
            _ => self
                .gears
                .get(gear)
                .is_none_or(|pre| pre.motor_speed_err.is_none()),
        }
    }
}

/// Precomputed battery-side quantities for one commanded current at the
/// current battery state: the per-current companion of [`StepContext`].
///
/// Everything here is a whole result of the same pure battery call the
/// completion stage would make — the current-limit check, the terminal
/// power, the Coulomb-counted state of charge after `dt`, and the
/// charge-window check on it — so completing against a `CurrentContext`
/// is bit-identical to recomputing them in place.
///
/// Unlike [`StepContext`], this **does** depend on the live battery state
/// (open-circuit voltage, thermal resistance, state of charge) and on
/// `dt`; it is only valid until the battery state changes. Inner
/// optimizers that evaluate one current against many `(gear, p_aux)`
/// candidates build it once per current and amortize the battery math.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentContext {
    /// The commanded battery current, A.
    battery_current_a: f64,
    /// Step length, s.
    dt: f64,
    /// Pre-resolved current-limit error, if any.
    current_err: Option<InfeasibleControl>,
    /// Terminal power at the commanded current, W.
    p_batt_w: f64,
    /// State of charge after carrying the commanded current for `dt`.
    soc_after: f64,
    /// Pre-resolved charge-window error for `soc_after`, if any.
    window_err: Option<InfeasibleControl>,
}

impl CurrentContext {
    /// The commanded battery current this context was built for, A.
    #[inline]
    pub fn battery_current_a(&self) -> f64 {
        self.battery_current_a
    }

    /// The step length this context was built for, s.
    #[inline]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Whether the commanded current passes the pack's current limits.
    /// When `false`, every moving-mode completion replays the same
    /// pre-resolved error (stopped mode ignores the commanded current).
    #[inline]
    pub fn is_feasible(&self) -> bool {
        self.current_err.is_none()
    }
}

impl Default for StepContext {
    /// An empty context (stopped, zero demand); rebuild before use.
    fn default() -> Self {
        Self {
            demand: WheelDemand {
                speed_mps: 0.0,
                accel_mps2: 0.0,
                grade: 0.0,
                tractive_force_n: 0.0,
                wheel_torque_nm: 0.0,
                wheel_speed_rad_s: 0.0,
                power_demand_w: 0.0,
            },
            kind: StepKind::Stopped,
            gears: Vec::new(),
        }
    }
}

/// The assembled parallel hybrid-electric vehicle.
///
/// # Examples
///
/// ```
/// use hev_model::{ControlInput, HevParams, ParallelHev};
///
/// let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
/// let demand = hev.demand(15.0, 0.3, 0.0); // 54 km/h accelerating
/// let control = ControlInput { battery_current_a: 10.0, gear: 2, p_aux_w: 600.0 };
/// let outcome = hev.step(&demand, &control, 1.0)?;
/// assert!(outcome.fuel_g >= 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelHev {
    body: VehicleBody,
    engine: Engine,
    motor: Motor,
    battery: Battery,
    drivetrain: Drivetrain,
    aux: AuxiliarySystems,
    /// Whether the engine was running at the end of the last committed
    /// step (drives the restart fuel penalty).
    engine_on: bool,
}

impl ParallelHev {
    /// Assembles a vehicle from a validated parameter set at the given
    /// initial state of charge.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if any component parameters are invalid.
    pub fn new(params: HevParams, initial_soc: f64) -> Result<Self, ParamError> {
        Ok(Self {
            body: VehicleBody::new(params.body)?,
            engine: Engine::new(params.ice)?,
            motor: Motor::new(params.motor)?,
            battery: Battery::new(params.battery, initial_soc)?,
            drivetrain: Drivetrain::new(params.drivetrain)?,
            aux: AuxiliarySystems::new(params.aux)?,
            engine_on: false,
        })
    }

    /// The chassis model.
    pub fn body(&self) -> &VehicleBody {
        &self.body
    }

    /// The engine model.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The electric-machine model.
    pub fn motor(&self) -> &Motor {
        &self.motor
    }

    /// The battery pack (read access; stepping mutates it).
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// The drivetrain model.
    pub fn drivetrain(&self) -> &Drivetrain {
        &self.drivetrain
    }

    /// The auxiliary-system model.
    pub fn aux(&self) -> &AuxiliarySystems {
        &self.aux
    }

    /// Current battery state of charge.
    pub fn soc(&self) -> f64 {
        self.battery.soc()
    }

    /// Resets the battery state of charge and stops the engine (between
    /// episodes).
    ///
    /// # Panics
    ///
    /// Panics if `soc` is outside `[0, 1]`.
    pub fn reset_soc(&mut self, soc: f64) {
        self.battery.reset(soc);
        self.battery.reset_temperature();
        self.engine_on = false;
    }

    /// Degrades the battery by scaling its capacity to `(1 − fade)` of
    /// nominal (see [`Battery::apply_capacity_fade`]); the fault-injection
    /// hook for pack aging. Applied once per degraded vehicle — fade
    /// compounds if called repeatedly.
    ///
    /// # Panics
    ///
    /// Panics if `fade` is outside `[0, 1)`.
    pub fn apply_battery_capacity_fade(&mut self, fade: f64) {
        self.battery.apply_capacity_fade(fade);
    }

    /// Scales the electric machine's torque envelope (see
    /// [`Motor::set_derate`]); the fault-injection hook for thermal
    /// derating windows. `1.0` restores the healthy envelope. Callers
    /// must set this *before* building the step context so the per-gear
    /// torque tables see the derated envelope.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn set_motor_derate(&mut self, factor: f64) {
        self.motor.set_derate(factor);
    }

    /// Whether the engine was running at the end of the last committed
    /// step.
    pub fn engine_on(&self) -> bool {
        self.engine_on
    }

    /// Wheel-level demand for a `(v, a, grade)` sample (Eq. 5–7).
    pub fn demand(&self, speed_mps: f64, accel_mps2: f64, grade: f64) -> WheelDemand {
        self.body.demand(speed_mps, accel_mps2, grade)
    }

    /// Resolves a control input at the current state *without* mutating
    /// the vehicle. Controllers use this as an action-feasibility mask
    /// and for inner optimization.
    ///
    /// This is a thin wrapper over the staged pipeline: it precomputes a
    /// single-gear entry (the first stage) and completes the control
    /// against it. Callers evaluating many controls against one demand
    /// should build a [`StepContext`] once and use
    /// [`ParallelHev::peek_with_context`] instead.
    ///
    /// # Errors
    ///
    /// Returns the [`InfeasibleControl`] reason when the powertrain cannot
    /// realize the input.
    pub fn peek(
        &self,
        demand: &WheelDemand,
        control: &ControlInput,
        dt: f64,
    ) -> Result<StepOutcome, InfeasibleControl> {
        crate::instrument::record_eval();
        self.drivetrain.ratio(control.gear)?;
        self.aux.check_power(control.p_aux_w)?;

        let mut outcome = if demand.speed_mps < STOP_SPEED_MPS {
            self.resolve_stopped(control, dt)?
        } else if demand.wheel_torque_nm < 0.0 {
            let pre = self.brake_pre(demand, control.gear);
            let cur = self.current_context(control.battery_current_a, dt);
            self.complete_braking(demand, &pre, &cur, control)?
        } else {
            let pre = self.propel_pre(demand, control.gear);
            let cur = self.current_context(control.battery_current_a, dt);
            self.complete_propelling(demand, &pre, &cur, control)?
        };
        let running = outcome.ice_speed_rad_s > 0.0;
        if running && !self.engine_on {
            outcome.engine_started = true;
            outcome.fuel_g += self.engine.params().start_fuel_penalty_g;
        }
        Ok(outcome)
    }

    /// Builds the precomputation stage of the step pipeline for `demand`:
    /// everything [`ParallelHev::peek`] derives that does not depend on
    /// the control input, for every gear. See [`StepContext`].
    pub fn step_context(&self, demand: &WheelDemand) -> StepContext {
        let mut ctx = StepContext::default();
        self.rebuild_context(&mut ctx, demand);
        ctx
    }

    /// Rebuilds `ctx` in place for a new demand, reusing its gear-table
    /// allocation (the per-step path of a simulation loop).
    ///
    /// Each call records one `ctx_rebuilds` tick in the
    /// [`hev_trace::evals`] counters — the quantity the cycle-level
    /// [`ContextTable`](crate::plan::ContextTable) amortizes to one per
    /// (cycle, vehicle-config) pair.
    pub fn rebuild_context(&self, ctx: &mut StepContext, demand: &WheelDemand) {
        let _span = hev_trace::span::enter("model.ctx_build");
        crate::instrument::record_ctx_rebuild();
        self.rebuild_context_untracked(ctx, demand);
    }

    /// The untracked body of [`ParallelHev::rebuild_context`]: used by
    /// the cycle-level table builder, which amortizes a whole cycle's
    /// worth of rebuilds into a single recorded tick.
    pub(crate) fn rebuild_context_untracked(&self, ctx: &mut StepContext, demand: &WheelDemand) {
        ctx.demand = *demand;
        ctx.gears.clear();
        ctx.kind = if demand.speed_mps < STOP_SPEED_MPS {
            StepKind::Stopped
        } else if demand.wheel_torque_nm < 0.0 {
            StepKind::Braking
        } else {
            StepKind::Propelling
        };
        match ctx.kind {
            // Stopped-mode resolution depends only on battery state; no
            // per-gear kinematics to precompute.
            StepKind::Stopped => {}
            StepKind::Braking => {
                for gear in 0..self.drivetrain.num_gears() {
                    ctx.gears.push(self.brake_pre(demand, gear));
                }
            }
            StepKind::Propelling => {
                for gear in 0..self.drivetrain.num_gears() {
                    ctx.gears.push(self.propel_pre(demand, gear));
                }
            }
        }
    }

    /// Builds the per-current precomputation for `battery_current_a`
    /// carried for `dt` seconds at the current battery state. See
    /// [`CurrentContext`].
    #[inline]
    pub fn current_context(&self, battery_current_a: f64, dt: f64) -> CurrentContext {
        let soc_after = self.battery.soc_after(battery_current_a, dt);
        CurrentContext {
            battery_current_a,
            dt,
            current_err: self.battery.check_current(battery_current_a).err(),
            p_batt_w: self.battery.terminal_power(battery_current_a),
            soc_after,
            window_err: self.check_window(soc_after).err(),
        }
    }

    /// The completion stage of the step pipeline: resolves a control input
    /// against a prebuilt [`StepContext`] *without* mutating the vehicle.
    /// Bit-identical to [`ParallelHev::peek`] on the context's demand.
    ///
    /// `ctx` must have been built (or rebuilt) by this vehicle for the
    /// demand being evaluated; completions read the *live* battery state,
    /// so a context stays valid across SOC changes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ParallelHev::peek`].
    pub fn peek_with_context(
        &self,
        ctx: &StepContext,
        control: &ControlInput,
        dt: f64,
    ) -> Result<StepOutcome, InfeasibleControl> {
        let cur = self.current_context(control.battery_current_a, dt);
        self.peek_with_contexts(ctx, &cur, control)
    }

    /// [`ParallelHev::peek_with_context`] with the battery-side
    /// precomputation also prebuilt — the innermost evaluation call of the
    /// staged pipeline. Callers that sweep `(gear, p_aux)` for one
    /// commanded current build the [`CurrentContext`] once per current.
    ///
    /// `cur` must have been built by [`ParallelHev::current_context`] for
    /// `control.battery_current_a` at the *current* battery state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ParallelHev::peek`].
    #[inline(always)]
    pub fn peek_with_contexts(
        &self,
        ctx: &StepContext,
        cur: &CurrentContext,
        control: &ControlInput,
    ) -> Result<StepOutcome, InfeasibleControl> {
        crate::instrument::record_eval();
        self.complete_control(ctx, cur, control)
    }

    /// The shared completion body of [`ParallelHev::peek_with_contexts`]
    /// and the batch kernel ([`ParallelHev::evaluate_batch`]): resolves
    /// one control against prebuilt contexts *without* touching the
    /// evaluation counter. The two callers differ only in how they count
    /// — one eval per scalar call vs. one per batch lane — so every lane
    /// of a batch is bit-identical to the scalar reference by
    /// construction.
    #[inline(always)]
    pub(crate) fn complete_control(
        &self,
        ctx: &StepContext,
        cur: &CurrentContext,
        control: &ControlInput,
    ) -> Result<StepOutcome, InfeasibleControl> {
        self.drivetrain.ratio(control.gear)?;
        self.aux.check_power(control.p_aux_w)?;
        debug_assert!(
            ctx.kind == StepKind::Stopped || ctx.gears.len() == self.drivetrain.num_gears(),
            "StepContext built for a different drivetrain"
        );
        debug_assert_eq!(
            cur.battery_current_a, control.battery_current_a,
            "CurrentContext built for a different current"
        );

        let mut outcome = match ctx.kind {
            StepKind::Stopped => self.resolve_stopped(control, cur.dt)?,
            StepKind::Braking => {
                self.complete_braking(&ctx.demand, &ctx.gears[control.gear], cur, control)?
            }
            StepKind::Propelling => {
                self.complete_propelling(&ctx.demand, &ctx.gears[control.gear], cur, control)?
            }
        };
        let running = outcome.ice_speed_rad_s > 0.0;
        if running && !self.engine_on {
            outcome.engine_started = true;
            outcome.fuel_g += self.engine.params().start_fuel_penalty_g;
        }
        Ok(outcome)
    }

    /// Resolves a control input against a prebuilt [`StepContext`] and
    /// commits the battery state; the staged counterpart of
    /// [`ParallelHev::step`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ParallelHev::peek`]; the state is unchanged on
    /// error.
    pub fn step_with_context(
        &mut self,
        ctx: &StepContext,
        control: &ControlInput,
        dt: f64,
    ) -> Result<StepOutcome, InfeasibleControl> {
        let outcome = self.peek_with_context(ctx, control, dt)?;
        // peek validated the battery step, so this commit cannot fail;
        // propagating (rather than unwrapping) keeps the path panic-free.
        self.battery.step(outcome.battery_current_a, dt)?;
        debug_assert!((self.battery.soc() - outcome.soc_after).abs() < 1e-12);
        self.engine_on = outcome.ice_speed_rad_s > 0.0;
        Ok(outcome)
    }

    /// Resolves a control input and commits the battery state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ParallelHev::peek`]; the state is unchanged on
    /// error.
    pub fn step(
        &mut self,
        demand: &WheelDemand,
        control: &ControlInput,
        dt: f64,
    ) -> Result<StepOutcome, InfeasibleControl> {
        let outcome = self.peek(demand, control, dt)?;
        // Commit through the battery's own step so the Coulomb counter
        // and (when enabled) the thermal state advance together. peek
        // validated the step, so this cannot fail; propagating keeps the
        // path panic-free.
        self.battery.step(outcome.battery_current_a, dt)?;
        debug_assert!((self.battery.soc() - outcome.soc_after).abs() < 1e-12);
        self.engine_on = outcome.ice_speed_rad_s > 0.0;
        Ok(outcome)
    }

    // ---- mode resolvers -------------------------------------------------

    fn resolve_stopped(
        &self,
        control: &ControlInput,
        dt: f64,
    ) -> Result<StepOutcome, InfeasibleControl> {
        // The bus must balance: the battery covers exactly the auxiliary
        // load; the commanded current is ignored (documented override).
        let i = self.battery.current_for_power(control.p_aux_w).ok_or(
            InfeasibleControl::BatteryPower {
                power_w: control.p_aux_w,
            },
        )?;
        self.battery.check_current(i)?;
        let soc_after = self.battery.soc_after(i, dt);
        if !self.battery.in_window(soc_after) {
            // The pack sits at the charge-sustaining floor: the engine
            // idles and carries the auxiliary load through its accessory
            // drive instead (the stop-start system keeps it running).
            return Ok(StepOutcome {
                mode: OperatingMode::Stopped,
                fuel_rate_g_per_s: self.engine.params().idle_fuel_g_per_s,
                fuel_g: self.engine.params().idle_fuel_g_per_s * dt,
                engine_started: false,
                ice_torque_nm: 0.0,
                ice_speed_rad_s: self.engine.min_speed(),
                em_torque_nm: 0.0,
                em_speed_rad_s: 0.0,
                battery_current_a: 0.0,
                battery_power_w: 0.0,
                p_aux_w: control.p_aux_w,
                aux_utility: self.aux.utility(control.p_aux_w),
                friction_brake_torque_nm: 0.0,
                soc_before: self.battery.soc(),
                soc_after: self.battery.soc(),
            });
        }
        Ok(StepOutcome {
            mode: OperatingMode::Stopped,
            fuel_rate_g_per_s: 0.0,
            fuel_g: 0.0,
            engine_started: false,
            ice_torque_nm: 0.0,
            ice_speed_rad_s: 0.0,
            em_torque_nm: 0.0,
            em_speed_rad_s: 0.0,
            battery_current_a: i,
            battery_power_w: control.p_aux_w,
            p_aux_w: control.p_aux_w,
            aux_utility: self.aux.utility(control.p_aux_w),
            friction_brake_torque_nm: 0.0,
            soc_before: self.battery.soc(),
            soc_after,
        })
    }

    // ---- staged precomputation (stage 1) --------------------------------
    //
    // The pre-builders compute, for one `(demand, gear)`, every quantity
    // the mode resolvers derive that does not depend on the control input.
    // Each cached value is the whole result of the same pure call the
    // monolithic path made (never a re-associated partial sum), and
    // control-independent *checks* are cached as the error they would
    // raise, replayed by the completion stage at the original position in
    // the check order — so completion is bit-identical by construction.

    fn propel_pre(&self, demand: &WheelDemand, gear: usize) -> GearPre {
        let w_em = self.drivetrain.em_speed(demand.wheel_speed_rad_s, gear);
        let motor_speed_err = self.check_motor_speed(w_em).err();
        let (t_em_min, t_em_max) = (self.motor.min_torque(w_em), self.motor.max_torque(w_em));
        let fixed_loss_w = self.motor.fixed_loss_at(w_em);
        let t_shaft = self
            .drivetrain
            .required_shaft_torque(demand.wheel_torque_nm, gear);

        // Engine-on branch: below the geared idle speed the launch clutch
        // slips — the engine runs at idle and transmits the torque across
        // the slipping clutch.
        let w_geared = self.drivetrain.ice_speed(demand.wheel_speed_rad_s, gear);
        let w_ice = w_geared.max(self.engine.min_speed());
        let engine_speed_err = if w_ice > self.engine.max_speed() {
            Some(InfeasibleControl::EngineSpeed {
                speed_rad_s: w_ice,
                min_rad_s: self.engine.min_speed(),
                max_rad_s: self.engine.max_speed(),
            })
        } else {
            None
        };
        let t_ice_max = self.engine.max_torque(w_ice);
        let ice_speed_factor = self.engine.speed_factor(w_ice);

        // EV branch: invert the machine's shaft contribution,
        // ρ·T_EM·η^α = t_shaft (the whole EV operating point is
        // control-independent; only the aux load varies).
        let p = self.drivetrain.params();
        let t_em_ev = if t_shaft >= 0.0 {
            t_shaft / (p.reduction_ratio * p.reduction_efficiency)
        } else {
            t_shaft * p.reduction_efficiency / p.reduction_ratio
        };
        let ev_torque_err = self.check_motor_torque(t_em_ev, w_em).err();
        let p_em_elec_ev = self.motor.electrical_power(t_em_ev, w_em);

        GearPre {
            w_em,
            motor_speed_err,
            t_shaft,
            fixed_loss_w,
            t_em_min,
            t_em_max,
            w_ice,
            engine_speed_err,
            t_ice_max,
            ice_speed_factor,
            t_em_ev,
            ev_torque_err,
            p_em_elec_ev,
            regen_floor: 0.0,
        }
    }

    fn brake_pre(&self, demand: &WheelDemand, gear: usize) -> GearPre {
        let w_em = self.drivetrain.em_speed(demand.wheel_speed_rad_s, gear);
        let motor_speed_err = self.check_motor_speed(w_em).err();
        let fixed_loss_w = self.motor.fixed_loss_at(w_em);
        let p = self.drivetrain.params();
        let t_shaft = self
            .drivetrain
            .required_shaft_torque(demand.wheel_torque_nm, gear);
        // Regen torque that would cover the whole braking demand
        // (α = −1 branch of Eq. 9).
        let t_em_full = t_shaft * p.reduction_efficiency / p.reduction_ratio;
        let regen_floor = t_em_full.max(self.motor.min_torque(w_em));
        GearPre {
            w_em,
            motor_speed_err,
            t_shaft,
            fixed_loss_w,
            regen_floor,
            ..GearPre::default()
        }
    }

    // ---- staged completion (stage 2) ------------------------------------

    #[inline(always)]
    fn complete_propelling(
        &self,
        demand: &WheelDemand,
        pre: &GearPre,
        cur: &CurrentContext,
        control: &ControlInput,
    ) -> Result<StepOutcome, InfeasibleControl> {
        if let Some(err) = pre.motor_speed_err {
            return Err(err);
        }
        if let Some(err) = cur.current_err {
            return Err(err);
        }
        let p_batt = cur.p_batt_w;
        let p_em_elec = p_batt - control.p_aux_w;
        let t_em = self
            .motor
            .torque_from_power_with_fixed_loss(p_em_elec, pre.w_em, pre.fixed_loss_w)
            .ok_or(InfeasibleControl::MotorPower {
                p_elec_w: p_em_elec,
                speed_rad_s: pre.w_em,
            })?;
        if !(pre.t_em_min..=pre.t_em_max).contains(&t_em) {
            return Err(InfeasibleControl::MotorTorque {
                torque_nm: t_em,
                min_nm: pre.t_em_min,
                max_nm: pre.t_em_max,
            });
        }

        let t_ice = pre.t_shaft - self.drivetrain.em_shaft_torque(t_em);

        if t_ice > ICE_ON_MIN_NM {
            // Engine-on: the commanded current holds; the engine supplies
            // the remaining torque exactly.
            if let Some(err) = pre.engine_speed_err {
                return Err(err);
            }
            if t_ice > pre.t_ice_max {
                return Err(InfeasibleControl::EngineTorque {
                    torque_nm: t_ice,
                    max_nm: pre.t_ice_max,
                });
            }
            let soc_after = cur.soc_after;
            if let Some(err) = cur.window_err {
                return Err(err);
            }
            let fuel_rate = self.engine.fuel_rate_with_pre(
                t_ice,
                pre.w_ice,
                pre.t_ice_max,
                pre.ice_speed_factor,
            );
            let mode = if t_em > TORQUE_EPS {
                OperatingMode::HybridAssist
            } else if t_em < -TORQUE_EPS {
                OperatingMode::RechargeDrive
            } else {
                OperatingMode::IceOnly
            };
            Ok(StepOutcome {
                mode,
                fuel_rate_g_per_s: fuel_rate,
                fuel_g: fuel_rate * cur.dt,
                engine_started: false,
                ice_torque_nm: t_ice,
                ice_speed_rad_s: pre.w_ice,
                em_torque_nm: t_em,
                em_speed_rad_s: pre.w_em,
                battery_current_a: control.battery_current_a,
                battery_power_w: p_batt,
                p_aux_w: control.p_aux_w,
                aux_utility: self.aux.utility(control.p_aux_w),
                friction_brake_torque_nm: 0.0,
                soc_before: self.battery.soc(),
                soc_after,
            })
        } else {
            // The electric path covers (or would over-deliver) the whole
            // demand: the engine disengages and the step resolves in EV
            // mode with the battery current *following the demand* — the
            // commanded current acts as an upper bound on discharge.
            self.complete_ev(demand, pre, control, cur.dt)
        }
    }

    #[inline(always)]
    fn complete_ev(
        &self,
        demand: &WheelDemand,
        pre: &GearPre,
        control: &ControlInput,
        dt: f64,
    ) -> Result<StepOutcome, InfeasibleControl> {
        if let Some(err) = pre.ev_torque_err {
            return Err(err);
        }
        let t_em = pre.t_em_ev;
        let p_batt = pre.p_em_elec_ev + control.p_aux_w;
        let i = self
            .battery
            .current_for_power(p_batt)
            .ok_or(InfeasibleControl::BatteryPower { power_w: p_batt })?;
        self.battery.check_current(i)?;
        let soc_after = self.battery.soc_after(i, dt);
        self.check_window(soc_after)?;
        Ok(StepOutcome {
            mode: OperatingMode::EvOnly,
            fuel_rate_g_per_s: 0.0,
            fuel_g: 0.0,
            engine_started: false,
            ice_torque_nm: 0.0,
            ice_speed_rad_s: 0.0,
            em_torque_nm: t_em,
            em_speed_rad_s: pre.w_em,
            battery_current_a: i,
            battery_power_w: p_batt,
            p_aux_w: control.p_aux_w,
            aux_utility: self.aux.utility(control.p_aux_w),
            friction_brake_torque_nm: 0.0,
            soc_before: self.battery.soc(),
            soc_after,
        })
        .map(|mut o| {
            // Preserve the wheel-torque bookkeeping for zero-demand coast.
            if demand.wheel_torque_nm.abs() < TORQUE_EPS && t_em.abs() < TORQUE_EPS {
                o.em_torque_nm = 0.0;
            }
            o
        })
    }

    #[inline(always)]
    fn complete_braking(
        &self,
        demand: &WheelDemand,
        pre: &GearPre,
        cur: &CurrentContext,
        control: &ControlInput,
    ) -> Result<StepOutcome, InfeasibleControl> {
        if let Some(err) = pre.motor_speed_err {
            return Err(err);
        }
        if let Some(err) = cur.current_err {
            return Err(err);
        }

        // Fuel cut: the engine is off. The commanded current expresses a
        // *regeneration intent*: the machine recovers as much as the
        // command asks for, clamped to what the braking demand and the
        // machine envelope admit; friction brakes absorb the remainder.
        let p_batt_cmd = cur.p_batt_w;
        let t_em_cmd = self
            .motor
            .torque_from_power_with_fixed_loss(
                p_batt_cmd - control.p_aux_w,
                pre.w_em,
                pre.fixed_loss_w,
            )
            .unwrap_or(pre.regen_floor);
        let t_em = t_em_cmd.clamp(pre.regen_floor, 0.0);

        // Re-derive the realized battery current from the clamped torque.
        let p_batt = self.motor.electrical_power(t_em, pre.w_em) + control.p_aux_w;
        let i = self
            .battery
            .current_for_power(p_batt)
            .ok_or(InfeasibleControl::BatteryPower { power_w: p_batt })?;
        self.battery.check_current(i)?;

        let t_wh_em = self.drivetrain.wheel_torque(0.0, t_em, control.gear);
        let friction = (demand.wheel_torque_nm - t_wh_em).min(0.0);
        let soc_after = self.battery.soc_after(i, cur.dt);
        self.check_window(soc_after)?;
        let mode = if t_em < -TORQUE_EPS {
            OperatingMode::RegenBraking
        } else {
            OperatingMode::FrictionBraking
        };
        Ok(StepOutcome {
            mode,
            fuel_rate_g_per_s: 0.0,
            fuel_g: 0.0,
            engine_started: false,
            ice_torque_nm: 0.0,
            ice_speed_rad_s: 0.0,
            em_torque_nm: t_em,
            em_speed_rad_s: pre.w_em,
            battery_current_a: i,
            battery_power_w: p_batt,
            p_aux_w: control.p_aux_w,
            aux_utility: self.aux.utility(control.p_aux_w),
            friction_brake_torque_nm: friction,
            soc_before: self.battery.soc(),
            soc_after,
        })
    }

    // ---- shared checks ---------------------------------------------------

    fn check_window(&self, soc_after: f64) -> Result<(), InfeasibleControl> {
        if !self.battery.in_window(soc_after) {
            return Err(InfeasibleControl::BatteryWindow {
                soc_after,
                soc_min: self.battery.params().soc_min,
                soc_max: self.battery.params().soc_max,
            });
        }
        Ok(())
    }

    fn check_motor_speed(&self, w_em: f64) -> Result<(), InfeasibleControl> {
        if w_em > self.motor.max_speed() {
            return Err(InfeasibleControl::MotorSpeed {
                speed_rad_s: w_em,
                max_rad_s: self.motor.max_speed(),
            });
        }
        Ok(())
    }

    fn check_motor_torque(&self, t_em: f64, w_em: f64) -> Result<(), InfeasibleControl> {
        let (min_nm, max_nm) = (self.motor.min_torque(w_em), self.motor.max_torque(w_em));
        if !(min_nm..=max_nm).contains(&t_em) {
            return Err(InfeasibleControl::MotorTorque {
                torque_nm: t_em,
                min_nm,
                max_nm,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    fn ctl(i: f64, gear: usize, aux: f64) -> ControlInput {
        ControlInput {
            battery_current_a: i,
            gear,
            p_aux_w: aux,
        }
    }

    #[test]
    fn stopped_covers_aux_from_battery() {
        let hev = hev();
        let d = hev.demand(0.0, 0.0, 0.0);
        let o = hev.peek(&d, &ctl(50.0, 0, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::Stopped);
        assert_eq!(o.fuel_g, 0.0);
        assert!(o.battery_current_a > 0.0 && o.battery_current_a < 3.0);
        assert!(o.soc_after < o.soc_before);
    }

    #[test]
    fn moderate_cruise_engine_on() {
        let hev = hev();
        // 72 km/h cruise in 4th gear, no battery assist.
        let d = hev.demand(20.0, 0.0, 0.0);
        let o = hev.peek(&d, &ctl(2.0, 3, 600.0), 1.0).unwrap();
        assert!(matches!(
            o.mode,
            OperatingMode::IceOnly | OperatingMode::HybridAssist | OperatingMode::RechargeDrive
        ));
        assert!(o.fuel_g > 0.0);
        assert!(o.ice_torque_nm > 0.0);
        assert!(hev.engine().speed_in_range(o.ice_speed_rad_s));
    }

    #[test]
    fn strong_discharge_gives_hybrid_assist() {
        let hev = hev();
        let d = hev.demand(20.0, 1.0, 0.0); // hard acceleration
        let o = hev.peek(&d, &ctl(60.0, 2, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::HybridAssist);
        assert!(o.em_torque_nm > 0.0);
        assert!(o.ice_torque_nm > 0.0);
    }

    #[test]
    fn charging_while_driving() {
        let hev = hev();
        let d = hev.demand(20.0, 0.0, 0.0);
        let o = hev.peek(&d, &ctl(-20.0, 3, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::RechargeDrive);
        assert!(o.em_torque_nm < 0.0);
        assert!(o.soc_after > o.soc_before);
        // Charging costs extra engine torque, hence extra fuel.
        let o_nocharge = hev.peek(&d, &ctl(2.0, 3, 600.0), 1.0).unwrap();
        assert!(o.fuel_g > o_nocharge.fuel_g);
    }

    #[test]
    fn generous_current_low_speed_resolves_ev() {
        let hev = hev();
        // Gentle launch with enough commanded discharge: the machine alone
        // covers the demand, the engine stays off, and the realized
        // current follows the demand (less than commanded).
        let d = hev.demand(3.0, 0.3, 0.0);
        let o = hev.peek(&d, &ctl(20.0, 0, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::EvOnly);
        assert_eq!(o.fuel_g, 0.0);
        assert!(o.em_torque_nm > 0.0);
        assert!(o.battery_current_a > 0.0);
        assert!(o.battery_current_a < 20.0);
        assert!(o.soc_after < o.soc_before);
    }

    #[test]
    fn zero_current_low_speed_keeps_engine_on() {
        let hev = hev();
        // With no commanded discharge the engine must carry the demand and
        // the machine generates to power the auxiliaries.
        let d = hev.demand(3.0, 0.3, 0.0);
        let o = hev.peek(&d, &ctl(0.0, 0, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::RechargeDrive);
        assert!(o.fuel_g > 0.0);
    }

    #[test]
    fn braking_regenerates() {
        let hev = hev();
        let d = hev.demand(15.0, -1.5, 0.0);
        assert!(d.wheel_torque_nm < 0.0);
        let o = hev.peek(&d, &ctl(-30.0, 2, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::RegenBraking);
        assert!(o.em_torque_nm < 0.0);
        assert!(o.friction_brake_torque_nm <= 0.0);
        assert!(o.soc_after > o.soc_before);
        assert_eq!(o.fuel_g, 0.0);
    }

    #[test]
    fn braking_with_zero_current_is_mostly_friction() {
        let hev = hev();
        let d = hev.demand(15.0, -1.5, 0.0);
        let o = hev.peek(&d, &ctl(0.0, 2, 600.0), 1.0).unwrap();
        // Current 0 means the pack neither charges nor discharges; the
        // machine covers only the aux load via slight regen.
        assert!(o.friction_brake_torque_nm < -100.0);
    }

    #[test]
    fn discharge_command_during_braking_clamps_to_friction() {
        let hev = hev();
        let d = hev.demand(15.0, -1.5, 0.0);
        // A discharge command makes no sense while braking: the machine
        // torque clamps to zero and friction absorbs the whole demand.
        let o = hev.peek(&d, &ctl(40.0, 2, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::FrictionBraking);
        assert_eq!(o.em_torque_nm, 0.0);
        assert!(o.friction_brake_torque_nm < -100.0);
        // The realized current only covers the auxiliary load and the
        // spinning machine's losses.
        assert!(o.battery_current_a > 0.0 && o.battery_current_a < 10.0);
    }

    #[test]
    fn excess_regen_command_is_clamped_to_demand() {
        let hev = hev();
        // Very gentle braking but an enormous charging command: the regen
        // clamps to what the braking demand admits, friction stays ~0,
        // and the realized charging current is far smaller than commanded.
        let d = hev.demand(10.0, -0.35, 0.0);
        let o = hev.peek(&d, &ctl(-80.0, 2, 600.0), 1.0).unwrap();
        assert!(o.em_torque_nm < 0.0);
        assert!(o.friction_brake_torque_nm > -1.0);
        assert!(o.battery_current_a > -80.0);
    }

    #[test]
    fn light_braking_is_feasible_at_any_ladder_current() {
        // The regression that motivated intent-clamped braking: a barely
        // decelerating coast must accept coarse current commands.
        let hev = hev();
        let d = hev.demand(4.1, -0.12, 0.0);
        assert!(d.wheel_torque_nm < 0.0);
        for i in [-60.0, -25.0, -8.0, 0.0, 8.0, 25.0] {
            for gear in 0..3 {
                assert!(
                    hev.peek(&d, &ctl(i, gear, 600.0), 1.0).is_ok(),
                    "i={i} gear={gear}"
                );
            }
        }
    }

    #[test]
    fn wrong_gear_overspeeds_engine() {
        let hev = hev();
        // 90 km/h in 1st gear.
        let d = hev.demand(25.0, 0.0, 0.0);
        let err = hev.peek(&d, &ctl(5.0, 0, 600.0), 1.0).unwrap_err();
        assert!(matches!(
            err,
            InfeasibleControl::EngineSpeed { .. } | InfeasibleControl::MotorSpeed { .. }
        ));
    }

    #[test]
    fn too_tall_gear_cannot_climb() {
        let hev = hev();
        // 10 km/h in 5th gear on a steep hill: the slipping-clutch engine
        // cannot deliver the shaft torque a top-gear launch would need.
        let d = hev.demand(2.78, 1.2, 0.10);
        let err = hev.peek(&d, &ctl(5.0, 4, 600.0), 1.0).unwrap_err();
        assert!(matches!(err, InfeasibleControl::EngineTorque { .. }));
    }

    #[test]
    fn clutch_slip_allows_engine_launch_at_soc_floor() {
        let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.4).unwrap();
        // 7.2 km/h, moderate demand, battery at the floor: EV is masked by
        // the charge window, but a 1st-gear slipping-clutch launch works.
        let d = hev.demand(2.0, 0.5, 0.0);
        let o = hev.step(&d, &ctl(0.0, 0, 600.0), 1.0).unwrap();
        assert!(o.fuel_g > 0.0);
        assert_eq!(o.ice_speed_rad_s, hev.engine().min_speed());
    }

    #[test]
    fn invalid_gear_rejected() {
        let hev = hev();
        let d = hev.demand(10.0, 0.0, 0.0);
        assert!(matches!(
            hev.peek(&d, &ctl(0.0, 9, 600.0), 1.0),
            Err(InfeasibleControl::InvalidGear { .. })
        ));
    }

    #[test]
    fn aux_out_of_range_rejected() {
        let hev = hev();
        let d = hev.demand(10.0, 0.0, 0.0);
        assert!(matches!(
            hev.peek(&d, &ctl(0.0, 2, 5_000.0), 1.0),
            Err(InfeasibleControl::AuxPowerRange { .. })
        ));
    }

    #[test]
    fn step_commits_soc_peek_does_not() {
        let mut hev = hev();
        let d = hev.demand(3.0, 0.3, 0.0);
        let c = ctl(20.0, 0, 600.0);
        let soc0 = hev.soc();
        let _ = hev.peek(&d, &c, 1.0).unwrap();
        assert_eq!(hev.soc(), soc0);
        let o = hev.step(&d, &c, 1.0).unwrap();
        assert_eq!(hev.soc(), o.soc_after);
        assert!(hev.soc() < soc0);
    }

    #[test]
    fn step_leaves_state_untouched_on_error() {
        let mut hev = hev();
        let d = hev.demand(25.0, 0.0, 0.0);
        let soc0 = hev.soc();
        assert!(hev.step(&d, &ctl(5.0, 0, 600.0), 1.0).is_err());
        assert_eq!(hev.soc(), soc0);
    }

    #[test]
    fn torque_balance_holds_when_engine_on() {
        let hev = hev();
        let d = hev.demand(20.0, 0.5, 0.0);
        let o = hev.peek(&d, &ctl(10.0, 2, 600.0), 1.0).unwrap();
        let back = hev
            .drivetrain()
            .wheel_torque(o.ice_torque_nm, o.em_torque_nm, 2);
        assert!(
            (back - d.wheel_torque_nm).abs() < 1e-6,
            "got {back} want {}",
            d.wheel_torque_nm
        );
    }

    #[test]
    fn higher_aux_power_draws_more_from_battery_in_ev() {
        let hev = hev();
        let d = hev.demand(3.0, 0.2, 0.0);
        let lo = hev.peek(&d, &ctl(20.0, 0, 100.0), 1.0).unwrap();
        let hi = hev.peek(&d, &ctl(20.0, 0, 1_500.0), 1.0).unwrap();
        assert!(hi.battery_current_a > lo.battery_current_a);
        assert!(hi.aux_utility < lo.aux_utility.max(1.0));
    }

    #[test]
    fn energy_conservation_engine_on() {
        // Fuel power >= wheel power + battery charging power (losses are
        // non-negative).
        let hev = hev();
        let d = hev.demand(20.0, 0.3, 0.0);
        let o = hev.peek(&d, &ctl(-15.0, 3, 600.0), 1.0).unwrap();
        let fuel_power = o.fuel_rate_g_per_s * hev.engine().params().fuel_lhv_j_per_g;
        let wheel_power = d.power_demand_w;
        let charge_power = -o.battery_power_w + o.p_aux_w; // stored + aux
        assert!(fuel_power > wheel_power + charge_power);
    }

    #[test]
    fn restart_penalty_applies_once() {
        let mut hev = hev();
        let d = hev.demand(20.0, 0.0, 0.0);
        let c = ctl(2.0, 3, 600.0);
        assert!(!hev.engine_on());
        let first = hev.step(&d, &c, 1.0).unwrap();
        assert!(first.engine_started);
        assert!(hev.engine_on());
        let second = hev.step(&d, &c, 1.0).unwrap();
        assert!(!second.engine_started);
        let penalty = hev.engine().params().start_fuel_penalty_g;
        // The second step starts from a marginally different state of
        // charge, so compare with a loose tolerance.
        assert!((first.fuel_g - second.fuel_g - penalty).abs() < 0.02);
    }

    #[test]
    fn ev_steps_do_not_restart_engine() {
        let mut hev = hev();
        let d = hev.demand(3.0, 0.3, 0.0);
        let o = hev.step(&d, &ctl(20.0, 0, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::EvOnly);
        assert!(!o.engine_started);
        assert_eq!(o.fuel_g, 0.0);
        assert!(!hev.engine_on());
    }

    #[test]
    fn reset_soc_stops_engine() {
        let mut hev = hev();
        let d = hev.demand(20.0, 0.0, 0.0);
        hev.step(&d, &ctl(2.0, 3, 600.0), 1.0).unwrap();
        assert!(hev.engine_on());
        hev.reset_soc(0.6);
        assert!(!hev.engine_on());
    }

    #[test]
    fn top_speed_is_bounded_by_motor_overspeed() {
        // The machine rides the gearbox through a fixed 2:1 reduction, so
        // above ω_EM^max/(R_top·ρ_reg) ≈ 47.8 m/s (172 km/h) every gear
        // overspeeds it: that *is* the vehicle's top speed.
        let hev = hev();
        let d = hev.demand(48.0, 0.0, 0.0);
        for gear in 0..5 {
            assert!(matches!(
                hev.peek(&d, &ctl(0.0, gear, 600.0), 1.0),
                Err(InfeasibleControl::MotorSpeed { .. })
                    | Err(InfeasibleControl::EngineSpeed { .. })
            ));
        }
        // Just below the limit the top gear works.
        let d_ok = hev.demand(47.0, 0.0, 0.0);
        assert!(hev.peek(&d_ok, &ctl(0.0, 4, 600.0), 1.0).is_ok());
    }

    #[test]
    fn reset_soc_roundtrips() {
        let mut hev = hev();
        hev.reset_soc(0.75);
        assert_eq!(hev.soc(), 0.75);
    }
}
