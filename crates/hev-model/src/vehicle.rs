//! The assembled parallel HEV and its backward-looking step function.
//!
//! [`ParallelHev`] couples the engine, electric machine, battery,
//! drivetrain, chassis, and auxiliary systems of §2 of the paper. A
//! controller chooses the battery current `i`, the gear `R(k)`, and the
//! auxiliary power `p_aux` (§2.2); all remaining quantities (engine and
//! machine torques/speeds, fuel rate) are *dependent* variables the model
//! resolves.
//!
//! # Control semantics
//!
//! * **Propelling, engine on** — the commanded current fixes the battery
//!   power; the electric machine converts `P_batt − p_aux`; the engine
//!   supplies the remaining shaft torque exactly.
//! * **Propelling, engine off (EV)** — if the implied engine torque falls
//!   below [`ICE_ON_MIN_NM`] (i.e. the electric path covers the demand),
//!   the engine disengages and the *battery current follows the demand*;
//!   the commanded current is an upper bound on discharge and the realized
//!   current is reported in the outcome.
//! * **Braking** — fuel is cut; the commanded current is a regeneration
//!   *intent*, clamped to what the braking demand and machine envelope
//!   admit; friction brakes absorb the remainder and the realized current
//!   is reported in the outcome.
//! * **Stopped** — the engine is off (automatic stop-start) and the
//!   battery powers the auxiliary load regardless of the commanded
//!   current.
//!
//! Any action that cannot be realized (torque/speed/current/window limits)
//! returns an [`InfeasibleControl`]; controllers use
//! [`ParallelHev::peek`] as an action mask.

use crate::aux::AuxiliarySystems;
use crate::battery::Battery;
use crate::drivetrain::Drivetrain;
use crate::dynamics::{VehicleBody, WheelDemand};
use crate::error::{InfeasibleControl, ParamError};
use crate::ice::Engine;
use crate::motor::Motor;
use crate::params::HevParams;
use serde::{Deserialize, Serialize};

/// Engine torque below which the engine shuts off and the step is
/// realized in EV mode, N·m.
pub const ICE_ON_MIN_NM: f64 = 1.0;
/// Vehicle speed below which the vehicle counts as stopped, m/s.
pub const STOP_SPEED_MPS: f64 = 0.05;
/// Torque tolerance used for mode classification, N·m.
const TORQUE_EPS: f64 = 1e-6;

/// The control variables chosen by an HEV controller (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlInput {
    /// Battery current `i`, A; positive discharges (paper convention).
    pub battery_current_a: f64,
    /// Gear index `k` (0-based).
    pub gear: usize,
    /// Auxiliary operating power `p_aux`, W.
    pub p_aux_w: f64,
}

/// The realized operating mode of one step (the paper's five modes from
/// §2, plus `Stopped` and `FrictionBraking` bookkeeping states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatingMode {
    /// Vehicle at rest; engine off; battery powers auxiliaries.
    Stopped,
    /// Mode (i): only the engine propels the vehicle.
    IceOnly,
    /// Mode (ii): only the electric machine propels the vehicle.
    EvOnly,
    /// Mode (iii): engine and machine propel together.
    HybridAssist,
    /// Mode (iv): the engine propels and charges the battery.
    RechargeDrive,
    /// Mode (v): regenerative braking.
    RegenBraking,
    /// Braking absorbed entirely by friction brakes.
    FrictionBraking,
}

/// Everything that happened in one realized step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// The realized operating mode.
    pub mode: OperatingMode,
    /// Fuel mass flow, g/s.
    pub fuel_rate_g_per_s: f64,
    /// Fuel consumed this step, g (includes the restart penalty when the
    /// engine started this step).
    pub fuel_g: f64,
    /// Whether the engine transitioned from stopped to running this step.
    pub engine_started: bool,
    /// Engine torque, N·m (0 when off).
    pub ice_torque_nm: f64,
    /// Engine speed, rad/s (0 when off).
    pub ice_speed_rad_s: f64,
    /// Machine torque, N·m.
    pub em_torque_nm: f64,
    /// Machine speed, rad/s.
    pub em_speed_rad_s: f64,
    /// Realized battery current, A (may differ from the commanded current
    /// in EV and stopped modes).
    pub battery_current_a: f64,
    /// Battery terminal power, W.
    pub battery_power_w: f64,
    /// Auxiliary power, W.
    pub p_aux_w: f64,
    /// Utility `f_aux(p_aux)` of the auxiliary systems this step.
    pub aux_utility: f64,
    /// Friction-brake torque at the wheels, N·m (≤ 0).
    pub friction_brake_torque_nm: f64,
    /// State of charge before the step.
    pub soc_before: f64,
    /// State of charge after the step.
    pub soc_after: f64,
}

/// The assembled parallel hybrid-electric vehicle.
///
/// # Examples
///
/// ```
/// use hev_model::{ControlInput, HevParams, ParallelHev};
///
/// let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
/// let demand = hev.demand(15.0, 0.3, 0.0); // 54 km/h accelerating
/// let control = ControlInput { battery_current_a: 10.0, gear: 2, p_aux_w: 600.0 };
/// let outcome = hev.step(&demand, &control, 1.0)?;
/// assert!(outcome.fuel_g >= 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelHev {
    body: VehicleBody,
    engine: Engine,
    motor: Motor,
    battery: Battery,
    drivetrain: Drivetrain,
    aux: AuxiliarySystems,
    /// Whether the engine was running at the end of the last committed
    /// step (drives the restart fuel penalty).
    engine_on: bool,
}

impl ParallelHev {
    /// Assembles a vehicle from a validated parameter set at the given
    /// initial state of charge.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if any component parameters are invalid.
    pub fn new(params: HevParams, initial_soc: f64) -> Result<Self, ParamError> {
        Ok(Self {
            body: VehicleBody::new(params.body)?,
            engine: Engine::new(params.ice)?,
            motor: Motor::new(params.motor)?,
            battery: Battery::new(params.battery, initial_soc)?,
            drivetrain: Drivetrain::new(params.drivetrain)?,
            aux: AuxiliarySystems::new(params.aux)?,
            engine_on: false,
        })
    }

    /// The chassis model.
    pub fn body(&self) -> &VehicleBody {
        &self.body
    }

    /// The engine model.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The electric-machine model.
    pub fn motor(&self) -> &Motor {
        &self.motor
    }

    /// The battery pack (read access; stepping mutates it).
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// The drivetrain model.
    pub fn drivetrain(&self) -> &Drivetrain {
        &self.drivetrain
    }

    /// The auxiliary-system model.
    pub fn aux(&self) -> &AuxiliarySystems {
        &self.aux
    }

    /// Current battery state of charge.
    pub fn soc(&self) -> f64 {
        self.battery.soc()
    }

    /// Resets the battery state of charge and stops the engine (between
    /// episodes).
    ///
    /// # Panics
    ///
    /// Panics if `soc` is outside `[0, 1]`.
    pub fn reset_soc(&mut self, soc: f64) {
        self.battery.reset(soc);
        self.battery.reset_temperature();
        self.engine_on = false;
    }

    /// Whether the engine was running at the end of the last committed
    /// step.
    pub fn engine_on(&self) -> bool {
        self.engine_on
    }

    /// Wheel-level demand for a `(v, a, grade)` sample (Eq. 5–7).
    pub fn demand(&self, speed_mps: f64, accel_mps2: f64, grade: f64) -> WheelDemand {
        self.body.demand(speed_mps, accel_mps2, grade)
    }

    /// Resolves a control input at the current state *without* mutating
    /// the vehicle. Controllers use this as an action-feasibility mask
    /// and for inner optimization.
    ///
    /// # Errors
    ///
    /// Returns the [`InfeasibleControl`] reason when the powertrain cannot
    /// realize the input.
    pub fn peek(
        &self,
        demand: &WheelDemand,
        control: &ControlInput,
        dt: f64,
    ) -> Result<StepOutcome, InfeasibleControl> {
        self.drivetrain.ratio(control.gear)?;
        self.aux.check_power(control.p_aux_w)?;

        let mut outcome = if demand.speed_mps < STOP_SPEED_MPS {
            self.resolve_stopped(control, dt)?
        } else if demand.wheel_torque_nm < 0.0 {
            self.resolve_braking(demand, control, dt)?
        } else {
            self.resolve_propelling(demand, control, dt)?
        };
        let running = outcome.ice_speed_rad_s > 0.0;
        if running && !self.engine_on {
            outcome.engine_started = true;
            outcome.fuel_g += self.engine.params().start_fuel_penalty_g;
        }
        Ok(outcome)
    }

    /// Resolves a control input and commits the battery state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ParallelHev::peek`]; the state is unchanged on
    /// error.
    pub fn step(
        &mut self,
        demand: &WheelDemand,
        control: &ControlInput,
        dt: f64,
    ) -> Result<StepOutcome, InfeasibleControl> {
        let outcome = self.peek(demand, control, dt)?;
        // Commit through the battery's own step so the Coulomb counter
        // and (when enabled) the thermal state advance together.
        self.battery
            .step(outcome.battery_current_a, dt)
            .expect("peek validated the battery step");
        debug_assert!((self.battery.soc() - outcome.soc_after).abs() < 1e-12);
        self.engine_on = outcome.ice_speed_rad_s > 0.0;
        Ok(outcome)
    }

    // ---- mode resolvers -------------------------------------------------

    fn resolve_stopped(
        &self,
        control: &ControlInput,
        dt: f64,
    ) -> Result<StepOutcome, InfeasibleControl> {
        // The bus must balance: the battery covers exactly the auxiliary
        // load; the commanded current is ignored (documented override).
        let i = self.battery.current_for_power(control.p_aux_w).ok_or(
            InfeasibleControl::BatteryPower {
                power_w: control.p_aux_w,
            },
        )?;
        self.battery.check_current(i)?;
        let soc_after = self.battery.soc_after(i, dt);
        if !self.battery.in_window(soc_after) {
            // The pack sits at the charge-sustaining floor: the engine
            // idles and carries the auxiliary load through its accessory
            // drive instead (the stop-start system keeps it running).
            return Ok(StepOutcome {
                mode: OperatingMode::Stopped,
                fuel_rate_g_per_s: self.engine.params().idle_fuel_g_per_s,
                fuel_g: self.engine.params().idle_fuel_g_per_s * dt,
                engine_started: false,
                ice_torque_nm: 0.0,
                ice_speed_rad_s: self.engine.min_speed(),
                em_torque_nm: 0.0,
                em_speed_rad_s: 0.0,
                battery_current_a: 0.0,
                battery_power_w: 0.0,
                p_aux_w: control.p_aux_w,
                aux_utility: self.aux.utility(control.p_aux_w),
                friction_brake_torque_nm: 0.0,
                soc_before: self.battery.soc(),
                soc_after: self.battery.soc(),
            });
        }
        Ok(StepOutcome {
            mode: OperatingMode::Stopped,
            fuel_rate_g_per_s: 0.0,
            fuel_g: 0.0,
            engine_started: false,
            ice_torque_nm: 0.0,
            ice_speed_rad_s: 0.0,
            em_torque_nm: 0.0,
            em_speed_rad_s: 0.0,
            battery_current_a: i,
            battery_power_w: control.p_aux_w,
            p_aux_w: control.p_aux_w,
            aux_utility: self.aux.utility(control.p_aux_w),
            friction_brake_torque_nm: 0.0,
            soc_before: self.battery.soc(),
            soc_after,
        })
    }

    fn resolve_propelling(
        &self,
        demand: &WheelDemand,
        control: &ControlInput,
        dt: f64,
    ) -> Result<StepOutcome, InfeasibleControl> {
        let gear = control.gear;
        let w_em = self.drivetrain.em_speed(demand.wheel_speed_rad_s, gear);
        self.check_motor_speed(w_em)?;

        self.battery.check_current(control.battery_current_a)?;
        let p_batt = self.battery.terminal_power(control.battery_current_a);
        let p_em_elec = p_batt - control.p_aux_w;
        let t_em = self
            .motor
            .torque_from_electrical_power(p_em_elec, w_em)
            .ok_or(InfeasibleControl::MotorPower {
                p_elec_w: p_em_elec,
                speed_rad_s: w_em,
            })?;
        self.check_motor_torque(t_em, w_em)?;

        let t_shaft = self
            .drivetrain
            .required_shaft_torque(demand.wheel_torque_nm, gear);
        let t_ice = t_shaft - self.drivetrain.em_shaft_torque(t_em);

        if t_ice > ICE_ON_MIN_NM {
            // Engine-on: the commanded current holds; the engine supplies
            // the remaining torque exactly. Below the geared idle speed
            // the launch clutch slips: the engine runs at idle and
            // transmits the torque across the slipping clutch.
            let w_geared = self.drivetrain.ice_speed(demand.wheel_speed_rad_s, gear);
            let w_ice = w_geared.max(self.engine.min_speed());
            if w_ice > self.engine.max_speed() {
                return Err(InfeasibleControl::EngineSpeed {
                    speed_rad_s: w_ice,
                    min_rad_s: self.engine.min_speed(),
                    max_rad_s: self.engine.max_speed(),
                });
            }
            let t_max = self.engine.max_torque(w_ice);
            if t_ice > t_max {
                return Err(InfeasibleControl::EngineTorque {
                    torque_nm: t_ice,
                    max_nm: t_max,
                });
            }
            let soc_after = self.battery.soc_after(control.battery_current_a, dt);
            self.check_window(soc_after)?;
            let fuel_rate = self.engine.fuel_rate(t_ice, w_ice);
            let mode = if t_em > TORQUE_EPS {
                OperatingMode::HybridAssist
            } else if t_em < -TORQUE_EPS {
                OperatingMode::RechargeDrive
            } else {
                OperatingMode::IceOnly
            };
            Ok(StepOutcome {
                mode,
                fuel_rate_g_per_s: fuel_rate,
                fuel_g: fuel_rate * dt,
                engine_started: false,
                ice_torque_nm: t_ice,
                ice_speed_rad_s: w_ice,
                em_torque_nm: t_em,
                em_speed_rad_s: w_em,
                battery_current_a: control.battery_current_a,
                battery_power_w: p_batt,
                p_aux_w: control.p_aux_w,
                aux_utility: self.aux.utility(control.p_aux_w),
                friction_brake_torque_nm: 0.0,
                soc_before: self.battery.soc(),
                soc_after,
            })
        } else {
            // The electric path covers (or would over-deliver) the whole
            // demand: the engine disengages and the step resolves in EV
            // mode with the battery current *following the demand* — the
            // commanded current acts as an upper bound on discharge.
            self.resolve_ev(demand, control, w_em, t_shaft, dt)
        }
    }

    fn resolve_ev(
        &self,
        demand: &WheelDemand,
        control: &ControlInput,
        w_em: f64,
        t_shaft: f64,
        dt: f64,
    ) -> Result<StepOutcome, InfeasibleControl> {
        let p = self.drivetrain.params();
        // Invert the machine's shaft contribution: ρ·T_EM·η^α = t_shaft.
        let t_em = if t_shaft >= 0.0 {
            t_shaft / (p.reduction_ratio * p.reduction_efficiency)
        } else {
            t_shaft * p.reduction_efficiency / p.reduction_ratio
        };
        self.check_motor_torque(t_em, w_em)?;
        let p_em_elec = self.motor.electrical_power(t_em, w_em);
        let p_batt = p_em_elec + control.p_aux_w;
        let i = self
            .battery
            .current_for_power(p_batt)
            .ok_or(InfeasibleControl::BatteryPower { power_w: p_batt })?;
        self.battery.check_current(i)?;
        let soc_after = self.battery.soc_after(i, dt);
        self.check_window(soc_after)?;
        Ok(StepOutcome {
            mode: OperatingMode::EvOnly,
            fuel_rate_g_per_s: 0.0,
            fuel_g: 0.0,
            engine_started: false,
            ice_torque_nm: 0.0,
            ice_speed_rad_s: 0.0,
            em_torque_nm: t_em,
            em_speed_rad_s: w_em,
            battery_current_a: i,
            battery_power_w: p_batt,
            p_aux_w: control.p_aux_w,
            aux_utility: self.aux.utility(control.p_aux_w),
            friction_brake_torque_nm: 0.0,
            soc_before: self.battery.soc(),
            soc_after,
        })
        .map(|mut o| {
            // Preserve the wheel-torque bookkeeping for zero-demand coast.
            if demand.wheel_torque_nm.abs() < TORQUE_EPS && t_em.abs() < TORQUE_EPS {
                o.em_torque_nm = 0.0;
            }
            o
        })
    }

    fn resolve_braking(
        &self,
        demand: &WheelDemand,
        control: &ControlInput,
        dt: f64,
    ) -> Result<StepOutcome, InfeasibleControl> {
        let gear = control.gear;
        let w_em = self.drivetrain.em_speed(demand.wheel_speed_rad_s, gear);
        self.check_motor_speed(w_em)?;
        self.battery.check_current(control.battery_current_a)?;

        // Fuel cut: the engine is off. The commanded current expresses a
        // *regeneration intent*: the machine recovers as much as the
        // command asks for, clamped to what the braking demand and the
        // machine envelope admit; friction brakes absorb the remainder.
        let p = self.drivetrain.params();
        let t_shaft = self
            .drivetrain
            .required_shaft_torque(demand.wheel_torque_nm, gear);
        // Regen torque that would cover the whole braking demand
        // (α = −1 branch of Eq. 9).
        let t_em_full = t_shaft * p.reduction_efficiency / p.reduction_ratio;
        let regen_floor = t_em_full.max(self.motor.min_torque(w_em));

        let p_batt_cmd = self.battery.terminal_power(control.battery_current_a);
        let t_em_cmd = self
            .motor
            .torque_from_electrical_power(p_batt_cmd - control.p_aux_w, w_em)
            .unwrap_or(regen_floor);
        let t_em = t_em_cmd.clamp(regen_floor, 0.0);

        // Re-derive the realized battery current from the clamped torque.
        let p_batt = self.motor.electrical_power(t_em, w_em) + control.p_aux_w;
        let i = self
            .battery
            .current_for_power(p_batt)
            .ok_or(InfeasibleControl::BatteryPower { power_w: p_batt })?;
        self.battery.check_current(i)?;

        let t_wh_em = self.drivetrain.wheel_torque(0.0, t_em, gear);
        let friction = (demand.wheel_torque_nm - t_wh_em).min(0.0);
        let soc_after = self.battery.soc_after(i, dt);
        self.check_window(soc_after)?;
        let mode = if t_em < -TORQUE_EPS {
            OperatingMode::RegenBraking
        } else {
            OperatingMode::FrictionBraking
        };
        Ok(StepOutcome {
            mode,
            fuel_rate_g_per_s: 0.0,
            fuel_g: 0.0,
            engine_started: false,
            ice_torque_nm: 0.0,
            ice_speed_rad_s: 0.0,
            em_torque_nm: t_em,
            em_speed_rad_s: w_em,
            battery_current_a: i,
            battery_power_w: p_batt,
            p_aux_w: control.p_aux_w,
            aux_utility: self.aux.utility(control.p_aux_w),
            friction_brake_torque_nm: friction,
            soc_before: self.battery.soc(),
            soc_after,
        })
    }

    // ---- shared checks ---------------------------------------------------

    fn check_window(&self, soc_after: f64) -> Result<(), InfeasibleControl> {
        if !self.battery.in_window(soc_after) {
            return Err(InfeasibleControl::BatteryWindow {
                soc_after,
                soc_min: self.battery.params().soc_min,
                soc_max: self.battery.params().soc_max,
            });
        }
        Ok(())
    }

    fn check_motor_speed(&self, w_em: f64) -> Result<(), InfeasibleControl> {
        if w_em > self.motor.max_speed() {
            return Err(InfeasibleControl::MotorSpeed {
                speed_rad_s: w_em,
                max_rad_s: self.motor.max_speed(),
            });
        }
        Ok(())
    }

    fn check_motor_torque(&self, t_em: f64, w_em: f64) -> Result<(), InfeasibleControl> {
        let (min_nm, max_nm) = (self.motor.min_torque(w_em), self.motor.max_torque(w_em));
        if !(min_nm..=max_nm).contains(&t_em) {
            return Err(InfeasibleControl::MotorTorque {
                torque_nm: t_em,
                min_nm,
                max_nm,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    fn ctl(i: f64, gear: usize, aux: f64) -> ControlInput {
        ControlInput {
            battery_current_a: i,
            gear,
            p_aux_w: aux,
        }
    }

    #[test]
    fn stopped_covers_aux_from_battery() {
        let hev = hev();
        let d = hev.demand(0.0, 0.0, 0.0);
        let o = hev.peek(&d, &ctl(50.0, 0, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::Stopped);
        assert_eq!(o.fuel_g, 0.0);
        assert!(o.battery_current_a > 0.0 && o.battery_current_a < 3.0);
        assert!(o.soc_after < o.soc_before);
    }

    #[test]
    fn moderate_cruise_engine_on() {
        let hev = hev();
        // 72 km/h cruise in 4th gear, no battery assist.
        let d = hev.demand(20.0, 0.0, 0.0);
        let o = hev.peek(&d, &ctl(2.0, 3, 600.0), 1.0).unwrap();
        assert!(matches!(
            o.mode,
            OperatingMode::IceOnly | OperatingMode::HybridAssist | OperatingMode::RechargeDrive
        ));
        assert!(o.fuel_g > 0.0);
        assert!(o.ice_torque_nm > 0.0);
        assert!(hev.engine().speed_in_range(o.ice_speed_rad_s));
    }

    #[test]
    fn strong_discharge_gives_hybrid_assist() {
        let hev = hev();
        let d = hev.demand(20.0, 1.0, 0.0); // hard acceleration
        let o = hev.peek(&d, &ctl(60.0, 2, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::HybridAssist);
        assert!(o.em_torque_nm > 0.0);
        assert!(o.ice_torque_nm > 0.0);
    }

    #[test]
    fn charging_while_driving() {
        let hev = hev();
        let d = hev.demand(20.0, 0.0, 0.0);
        let o = hev.peek(&d, &ctl(-20.0, 3, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::RechargeDrive);
        assert!(o.em_torque_nm < 0.0);
        assert!(o.soc_after > o.soc_before);
        // Charging costs extra engine torque, hence extra fuel.
        let o_nocharge = hev.peek(&d, &ctl(2.0, 3, 600.0), 1.0).unwrap();
        assert!(o.fuel_g > o_nocharge.fuel_g);
    }

    #[test]
    fn generous_current_low_speed_resolves_ev() {
        let hev = hev();
        // Gentle launch with enough commanded discharge: the machine alone
        // covers the demand, the engine stays off, and the realized
        // current follows the demand (less than commanded).
        let d = hev.demand(3.0, 0.3, 0.0);
        let o = hev.peek(&d, &ctl(20.0, 0, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::EvOnly);
        assert_eq!(o.fuel_g, 0.0);
        assert!(o.em_torque_nm > 0.0);
        assert!(o.battery_current_a > 0.0);
        assert!(o.battery_current_a < 20.0);
        assert!(o.soc_after < o.soc_before);
    }

    #[test]
    fn zero_current_low_speed_keeps_engine_on() {
        let hev = hev();
        // With no commanded discharge the engine must carry the demand and
        // the machine generates to power the auxiliaries.
        let d = hev.demand(3.0, 0.3, 0.0);
        let o = hev.peek(&d, &ctl(0.0, 0, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::RechargeDrive);
        assert!(o.fuel_g > 0.0);
    }

    #[test]
    fn braking_regenerates() {
        let hev = hev();
        let d = hev.demand(15.0, -1.5, 0.0);
        assert!(d.wheel_torque_nm < 0.0);
        let o = hev.peek(&d, &ctl(-30.0, 2, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::RegenBraking);
        assert!(o.em_torque_nm < 0.0);
        assert!(o.friction_brake_torque_nm <= 0.0);
        assert!(o.soc_after > o.soc_before);
        assert_eq!(o.fuel_g, 0.0);
    }

    #[test]
    fn braking_with_zero_current_is_mostly_friction() {
        let hev = hev();
        let d = hev.demand(15.0, -1.5, 0.0);
        let o = hev.peek(&d, &ctl(0.0, 2, 600.0), 1.0).unwrap();
        // Current 0 means the pack neither charges nor discharges; the
        // machine covers only the aux load via slight regen.
        assert!(o.friction_brake_torque_nm < -100.0);
    }

    #[test]
    fn discharge_command_during_braking_clamps_to_friction() {
        let hev = hev();
        let d = hev.demand(15.0, -1.5, 0.0);
        // A discharge command makes no sense while braking: the machine
        // torque clamps to zero and friction absorbs the whole demand.
        let o = hev.peek(&d, &ctl(40.0, 2, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::FrictionBraking);
        assert_eq!(o.em_torque_nm, 0.0);
        assert!(o.friction_brake_torque_nm < -100.0);
        // The realized current only covers the auxiliary load and the
        // spinning machine's losses.
        assert!(o.battery_current_a > 0.0 && o.battery_current_a < 10.0);
    }

    #[test]
    fn excess_regen_command_is_clamped_to_demand() {
        let hev = hev();
        // Very gentle braking but an enormous charging command: the regen
        // clamps to what the braking demand admits, friction stays ~0,
        // and the realized charging current is far smaller than commanded.
        let d = hev.demand(10.0, -0.35, 0.0);
        let o = hev.peek(&d, &ctl(-80.0, 2, 600.0), 1.0).unwrap();
        assert!(o.em_torque_nm < 0.0);
        assert!(o.friction_brake_torque_nm > -1.0);
        assert!(o.battery_current_a > -80.0);
    }

    #[test]
    fn light_braking_is_feasible_at_any_ladder_current() {
        // The regression that motivated intent-clamped braking: a barely
        // decelerating coast must accept coarse current commands.
        let hev = hev();
        let d = hev.demand(4.1, -0.12, 0.0);
        assert!(d.wheel_torque_nm < 0.0);
        for i in [-60.0, -25.0, -8.0, 0.0, 8.0, 25.0] {
            for gear in 0..3 {
                assert!(
                    hev.peek(&d, &ctl(i, gear, 600.0), 1.0).is_ok(),
                    "i={i} gear={gear}"
                );
            }
        }
    }

    #[test]
    fn wrong_gear_overspeeds_engine() {
        let hev = hev();
        // 90 km/h in 1st gear.
        let d = hev.demand(25.0, 0.0, 0.0);
        let err = hev.peek(&d, &ctl(5.0, 0, 600.0), 1.0).unwrap_err();
        assert!(matches!(
            err,
            InfeasibleControl::EngineSpeed { .. } | InfeasibleControl::MotorSpeed { .. }
        ));
    }

    #[test]
    fn too_tall_gear_cannot_climb() {
        let hev = hev();
        // 10 km/h in 5th gear on a steep hill: the slipping-clutch engine
        // cannot deliver the shaft torque a top-gear launch would need.
        let d = hev.demand(2.78, 1.2, 0.10);
        let err = hev.peek(&d, &ctl(5.0, 4, 600.0), 1.0).unwrap_err();
        assert!(matches!(err, InfeasibleControl::EngineTorque { .. }));
    }

    #[test]
    fn clutch_slip_allows_engine_launch_at_soc_floor() {
        let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.4).unwrap();
        // 7.2 km/h, moderate demand, battery at the floor: EV is masked by
        // the charge window, but a 1st-gear slipping-clutch launch works.
        let d = hev.demand(2.0, 0.5, 0.0);
        let o = hev.step(&d, &ctl(0.0, 0, 600.0), 1.0).unwrap();
        assert!(o.fuel_g > 0.0);
        assert_eq!(o.ice_speed_rad_s, hev.engine().min_speed());
    }

    #[test]
    fn invalid_gear_rejected() {
        let hev = hev();
        let d = hev.demand(10.0, 0.0, 0.0);
        assert!(matches!(
            hev.peek(&d, &ctl(0.0, 9, 600.0), 1.0),
            Err(InfeasibleControl::InvalidGear { .. })
        ));
    }

    #[test]
    fn aux_out_of_range_rejected() {
        let hev = hev();
        let d = hev.demand(10.0, 0.0, 0.0);
        assert!(matches!(
            hev.peek(&d, &ctl(0.0, 2, 5_000.0), 1.0),
            Err(InfeasibleControl::AuxPowerRange { .. })
        ));
    }

    #[test]
    fn step_commits_soc_peek_does_not() {
        let mut hev = hev();
        let d = hev.demand(3.0, 0.3, 0.0);
        let c = ctl(20.0, 0, 600.0);
        let soc0 = hev.soc();
        let _ = hev.peek(&d, &c, 1.0).unwrap();
        assert_eq!(hev.soc(), soc0);
        let o = hev.step(&d, &c, 1.0).unwrap();
        assert_eq!(hev.soc(), o.soc_after);
        assert!(hev.soc() < soc0);
    }

    #[test]
    fn step_leaves_state_untouched_on_error() {
        let mut hev = hev();
        let d = hev.demand(25.0, 0.0, 0.0);
        let soc0 = hev.soc();
        assert!(hev.step(&d, &ctl(5.0, 0, 600.0), 1.0).is_err());
        assert_eq!(hev.soc(), soc0);
    }

    #[test]
    fn torque_balance_holds_when_engine_on() {
        let hev = hev();
        let d = hev.demand(20.0, 0.5, 0.0);
        let o = hev.peek(&d, &ctl(10.0, 2, 600.0), 1.0).unwrap();
        let back = hev
            .drivetrain()
            .wheel_torque(o.ice_torque_nm, o.em_torque_nm, 2);
        assert!(
            (back - d.wheel_torque_nm).abs() < 1e-6,
            "got {back} want {}",
            d.wheel_torque_nm
        );
    }

    #[test]
    fn higher_aux_power_draws_more_from_battery_in_ev() {
        let hev = hev();
        let d = hev.demand(3.0, 0.2, 0.0);
        let lo = hev.peek(&d, &ctl(20.0, 0, 100.0), 1.0).unwrap();
        let hi = hev.peek(&d, &ctl(20.0, 0, 1_500.0), 1.0).unwrap();
        assert!(hi.battery_current_a > lo.battery_current_a);
        assert!(hi.aux_utility < lo.aux_utility.max(1.0));
    }

    #[test]
    fn energy_conservation_engine_on() {
        // Fuel power >= wheel power + battery charging power (losses are
        // non-negative).
        let hev = hev();
        let d = hev.demand(20.0, 0.3, 0.0);
        let o = hev.peek(&d, &ctl(-15.0, 3, 600.0), 1.0).unwrap();
        let fuel_power = o.fuel_rate_g_per_s * hev.engine().params().fuel_lhv_j_per_g;
        let wheel_power = d.power_demand_w;
        let charge_power = -o.battery_power_w + o.p_aux_w; // stored + aux
        assert!(fuel_power > wheel_power + charge_power);
    }

    #[test]
    fn restart_penalty_applies_once() {
        let mut hev = hev();
        let d = hev.demand(20.0, 0.0, 0.0);
        let c = ctl(2.0, 3, 600.0);
        assert!(!hev.engine_on());
        let first = hev.step(&d, &c, 1.0).unwrap();
        assert!(first.engine_started);
        assert!(hev.engine_on());
        let second = hev.step(&d, &c, 1.0).unwrap();
        assert!(!second.engine_started);
        let penalty = hev.engine().params().start_fuel_penalty_g;
        // The second step starts from a marginally different state of
        // charge, so compare with a loose tolerance.
        assert!((first.fuel_g - second.fuel_g - penalty).abs() < 0.02);
    }

    #[test]
    fn ev_steps_do_not_restart_engine() {
        let mut hev = hev();
        let d = hev.demand(3.0, 0.3, 0.0);
        let o = hev.step(&d, &ctl(20.0, 0, 600.0), 1.0).unwrap();
        assert_eq!(o.mode, OperatingMode::EvOnly);
        assert!(!o.engine_started);
        assert_eq!(o.fuel_g, 0.0);
        assert!(!hev.engine_on());
    }

    #[test]
    fn reset_soc_stops_engine() {
        let mut hev = hev();
        let d = hev.demand(20.0, 0.0, 0.0);
        hev.step(&d, &ctl(2.0, 3, 600.0), 1.0).unwrap();
        assert!(hev.engine_on());
        hev.reset_soc(0.6);
        assert!(!hev.engine_on());
    }

    #[test]
    fn top_speed_is_bounded_by_motor_overspeed() {
        // The machine rides the gearbox through a fixed 2:1 reduction, so
        // above ω_EM^max/(R_top·ρ_reg) ≈ 47.8 m/s (172 km/h) every gear
        // overspeeds it: that *is* the vehicle's top speed.
        let hev = hev();
        let d = hev.demand(48.0, 0.0, 0.0);
        for gear in 0..5 {
            assert!(matches!(
                hev.peek(&d, &ctl(0.0, gear, 600.0), 1.0),
                Err(InfeasibleControl::MotorSpeed { .. })
                    | Err(InfeasibleControl::EngineSpeed { .. })
            ));
        }
        // Just below the limit the top gear works.
        let d_ok = hev.demand(47.0, 0.0, 0.0);
        assert!(hev.peek(&d_ok, &ctl(0.0, 4, 600.0), 1.0).is_ok());
    }

    #[test]
    fn reset_soc_roundtrips() {
        let mut hev = hev();
        hev.reset_soc(0.75);
        assert_eq!(hev.soc(), 0.75);
    }
}
