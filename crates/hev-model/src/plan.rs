//! Cycle-level precomputation: the [`ContextTable`].
//!
//! A [`StepContext`](crate::StepContext) is a pure function of the
//! vehicle's *configuration* (body, drivetrain, motor envelope at the
//! current derate) and one timestep's wheel demand — it carries no
//! battery state. Training replays the same drive cycle thousands of
//! times, so rebuilding the context at every step of every episode
//! repeats the same work verbatim. A [`ContextTable`] performs that
//! precompute **once per (cycle, vehicle-config) pair**: every
//! timestep's demand and context, built up front and shared immutably
//! (wrap it in an `Arc`) across episodes, harness workers, lockstep
//! episode waves, and the DP solver's state-of-charge sweep.
//!
//! # Validity
//!
//! A table is valid for any vehicle whose demand-side configuration is
//! identical to the builder's: same body, drivetrain, engine, and motor
//! parameters, **at the same motor derate** (build tables healthy, at
//! derate 1.0). Battery state never matters — contexts are
//! battery-independent by construction — so capacity fade, state of
//! charge, and thermal state do not invalidate a table. Callers that
//! derate the motor mid-episode (fault injection) must bypass the table
//! for exactly those steps and rebuild locally; the simulation loop's
//! per-step gate does this.
//!
//! # Accounting
//!
//! One build records exactly **one** `ctx_rebuilds` tick in
//! [`hev_trace::evals`], however long the cycle — that is the
//! amortization the counter exists to prove. Per-step
//! [`ParallelHev::rebuild_context`] calls record one tick each.

use crate::dynamics::WheelDemand;
use crate::vehicle::{ParallelHev, StepContext};

/// Every timestep's wheel demand and battery-independent step context
/// for one drive cycle, precomputed once. See the module docs for the
/// validity contract.
#[derive(Debug, Clone, Default)]
pub struct ContextTable {
    dt: f64,
    demands: Vec<WheelDemand>,
    contexts: Vec<StepContext>,
}

impl ContextTable {
    /// Builds the table for `demands` at step length `dt` through
    /// `hev`'s demand-side configuration.
    ///
    /// Each entry is bit-identical to what
    /// [`ParallelHev::rebuild_context`] would produce for the same
    /// demand at the builder's motor derate, but the whole build records
    /// a single `ctx_rebuilds` tick (see the module docs).
    pub fn build(hev: &ParallelHev, demands: &[WheelDemand], dt: f64) -> Self {
        hev_trace::evals::record_ctx_rebuild();
        let contexts = demands
            .iter()
            .map(|demand| {
                let mut ctx = StepContext::default();
                hev.rebuild_context_untracked(&mut ctx, demand);
                ctx
            })
            .collect();
        Self {
            dt,
            demands: demands.to_vec(),
            contexts,
        }
    }

    /// Number of timesteps tabulated.
    pub fn len(&self) -> usize {
        self.contexts.len()
    }

    /// Whether the table tabulates no timesteps.
    pub fn is_empty(&self) -> bool {
        self.contexts.is_empty()
    }

    /// The step length the table was built for, s.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The wheel demand of one timestep.
    ///
    /// # Panics
    ///
    /// Panics if `step` is out of range.
    pub fn demand(&self, step: usize) -> &WheelDemand {
        &self.demands[step]
    }

    /// The precomputed step context of one timestep.
    ///
    /// # Panics
    ///
    /// Panics if `step` is out of range.
    pub fn context(&self, step: usize) -> &StepContext {
        &self.contexts[step]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HevParams;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    #[test]
    fn table_entries_match_per_step_rebuilds_bit_for_bit() {
        let hev = hev();
        let samples = [(0.0, 0.0), (3.0, 0.4), (20.0, 0.3), (15.0, -1.5)];
        let demands: Vec<WheelDemand> = samples
            .iter()
            .map(|&(v, a)| hev.demand(v, a, 0.0))
            .collect();
        let table = ContextTable::build(&hev, &demands, 1.0);
        assert_eq!(table.len(), demands.len());
        for (t, demand) in demands.iter().enumerate() {
            let mut fresh = StepContext::default();
            hev.rebuild_context(&mut fresh, demand);
            let tabulated = table.context(t);
            assert_eq!(tabulated.kind, fresh.kind, "step {t}");
            assert_eq!(tabulated.gears.len(), fresh.gears.len(), "step {t}");
            assert_eq!(
                tabulated.demand().wheel_torque_nm.to_bits(),
                fresh.demand().wheel_torque_nm.to_bits(),
                "step {t}"
            );
            assert_eq!(
                table.demand(t).wheel_torque_nm.to_bits(),
                demand.wheel_torque_nm.to_bits()
            );
        }
    }

    #[test]
    fn one_build_records_one_ctx_rebuild() {
        let hev = hev();
        let demands: Vec<WheelDemand> = (0..50)
            .map(|k| hev.demand(5.0 + k as f64 * 0.2, 0.1, 0.0))
            .collect();
        let before = hev_trace::evals::ctx_rebuilds();
        let table = ContextTable::build(&hev, &demands, 1.0);
        assert_eq!(table.len(), 50);
        assert_eq!(
            hev_trace::evals::ctx_rebuilds().wrapping_sub(before),
            1,
            "a whole-cycle build must amortize to one recorded rebuild"
        );
        // The per-step path records one per call.
        let mut ctx = StepContext::default();
        let before = hev_trace::evals::ctx_rebuilds();
        hev.rebuild_context(&mut ctx, &demands[0]);
        hev.rebuild_context(&mut ctx, &demands[1]);
        assert_eq!(hev_trace::evals::ctx_rebuilds().wrapping_sub(before), 2);
    }
}
