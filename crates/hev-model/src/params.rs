//! Parameter sets for every powertrain component, with validation.
//!
//! The default parameter set, [`HevParams::default_parallel_hev`], models a
//! mid-size parallel HEV of the class ADVISOR ships as its default parallel
//! configuration (≈1350 kg, 57 kW SI engine, 25 kW PM machine, 26 Ah pack,
//! 5-speed gearbox). The DAC'15 paper's own Table 1 is reproduced by the
//! `repro -- table1` bench target from these values.

use crate::error::ParamError;
use serde::{Deserialize, Serialize};

/// Standard gravity, m/s².
pub const GRAVITY: f64 = 9.81;
/// Air density at sea level, kg/m³.
pub const AIR_DENSITY: f64 = 1.2;
/// Lower heating value of gasoline, J/g (the paper's fuel energy density
/// `D_f`).
pub const FUEL_LHV_J_PER_G: f64 = 42_600.0;
/// Mass of one US gallon of gasoline, grams (0.749 kg/L × 3.785 L).
pub const FUEL_G_PER_GALLON: f64 = 2835.0;
/// Conversion from rpm to rad/s.
pub const RPM_TO_RAD_S: f64 = std::f64::consts::PI / 30.0;

/// Chassis and tire parameters (Eq. 5–7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BodyParams {
    /// Curb mass plus driver, kg.
    pub mass_kg: f64,
    /// Factor applied to `mass_kg` to account for rotating inertia.
    pub rotating_mass_factor: f64,
    /// Aerodynamic drag coefficient `C_D`.
    pub drag_coefficient: f64,
    /// Frontal area `A_F`, m².
    pub frontal_area_m2: f64,
    /// Rolling friction coefficient `C_R`.
    pub rolling_coefficient: f64,
    /// Wheel radius `r_wh`, m.
    pub wheel_radius_m: f64,
}

impl BodyParams {
    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] naming the first violated field.
    pub fn validate(&self) -> Result<(), ParamError> {
        if !(self.mass_kg.is_finite() && self.mass_kg > 0.0) {
            return Err(ParamError::new("mass_kg", "must be positive"));
        }
        if self.rotating_mass_factor < 1.0 {
            return Err(ParamError::new("rotating_mass_factor", "must be >= 1"));
        }
        if !(self.drag_coefficient > 0.0 && self.drag_coefficient < 1.0) {
            return Err(ParamError::new("drag_coefficient", "must be in (0, 1)"));
        }
        if self.frontal_area_m2 <= 0.0 {
            return Err(ParamError::new("frontal_area_m2", "must be positive"));
        }
        if !(self.rolling_coefficient > 0.0 && self.rolling_coefficient < 0.1) {
            return Err(ParamError::new(
                "rolling_coefficient",
                "must be in (0, 0.1)",
            ));
        }
        if self.wheel_radius_m <= 0.0 {
            return Err(ParamError::new("wheel_radius_m", "must be positive"));
        }
        Ok(())
    }
}

impl Default for BodyParams {
    fn default() -> Self {
        Self {
            mass_kg: 1350.0,
            rotating_mass_factor: 1.04,
            drag_coefficient: 0.30,
            frontal_area_m2: 2.0,
            rolling_coefficient: 0.009,
            wheel_radius_m: 0.282,
        }
    }
}

/// Internal-combustion-engine parameters (quasi-static model, Eq. 1–2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IceParams {
    /// Wide-open-throttle torque curve as `(speed rad/s, torque N·m)`
    /// knots; linearly interpolated, strictly increasing in speed.
    pub max_torque_curve: Vec<(f64, f64)>,
    /// Idle speed, rad/s (minimum speed when running).
    pub idle_speed_rad_s: f64,
    /// Redline, rad/s.
    pub max_speed_rad_s: f64,
    /// Peak brake thermal efficiency.
    pub peak_efficiency: f64,
    /// Load ratio (torque / max torque) at which efficiency peaks.
    pub best_load_ratio: f64,
    /// Width of the load-efficiency parabola (larger = flatter map).
    pub load_span: f64,
    /// Speed at which efficiency peaks, rad/s.
    pub best_speed_rad_s: f64,
    /// Width of the speed-efficiency parabola, rad/s.
    pub speed_span_rad_s: f64,
    /// Fuel flow when idling unloaded, g/s.
    pub idle_fuel_g_per_s: f64,
    /// Extra fuel burned by a cold restart of the (stopped) engine, g.
    /// Discourages on/off churn, as in real stop-start calibrations.
    pub start_fuel_penalty_g: f64,
    /// Fuel lower heating value `D_f`, J/g.
    pub fuel_lhv_j_per_g: f64,
}

impl IceParams {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] naming the first violated field.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.max_torque_curve.len() < 2 {
            return Err(ParamError::new(
                "max_torque_curve",
                "needs at least two knots",
            ));
        }
        for w in self.max_torque_curve.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(ParamError::new(
                    "max_torque_curve",
                    "knot speeds must be strictly increasing",
                ));
            }
        }
        if self.max_torque_curve.iter().any(|&(_, t)| t <= 0.0) {
            return Err(ParamError::new(
                "max_torque_curve",
                "torques must be positive",
            ));
        }
        if self.idle_speed_rad_s <= 0.0 || self.idle_speed_rad_s >= self.max_speed_rad_s {
            return Err(ParamError::new(
                "idle_speed_rad_s",
                "must be in (0, max_speed)",
            ));
        }
        if !(self.peak_efficiency > 0.0 && self.peak_efficiency < 0.6) {
            return Err(ParamError::new("peak_efficiency", "must be in (0, 0.6)"));
        }
        if !(self.best_load_ratio > 0.0 && self.best_load_ratio <= 1.0) {
            return Err(ParamError::new("best_load_ratio", "must be in (0, 1]"));
        }
        if self.load_span <= 0.0 || self.speed_span_rad_s <= 0.0 {
            return Err(ParamError::new("load_span", "spans must be positive"));
        }
        if self.idle_fuel_g_per_s < 0.0 {
            return Err(ParamError::new("idle_fuel_g_per_s", "must be non-negative"));
        }
        if self.start_fuel_penalty_g < 0.0 {
            return Err(ParamError::new(
                "start_fuel_penalty_g",
                "must be non-negative",
            ));
        }
        if self.fuel_lhv_j_per_g <= 0.0 {
            return Err(ParamError::new("fuel_lhv_j_per_g", "must be positive"));
        }
        Ok(())
    }

    /// Rated power: maximum of `T_max(ω)·ω` over the torque curve knots, W.
    pub fn rated_power_w(&self) -> f64 {
        self.max_torque_curve
            .iter()
            .map(|&(w, t)| w * t)
            .fold(0.0, f64::max)
    }
}

impl Default for IceParams {
    fn default() -> Self {
        Self {
            // 1.0–1.3 L SI engine class: ~108 N·m peak, 57 kW near 5000 rpm.
            max_torque_curve: vec![
                (1000.0 * RPM_TO_RAD_S, 75.0),
                (2000.0 * RPM_TO_RAD_S, 95.0),
                (3000.0 * RPM_TO_RAD_S, 105.0),
                (4000.0 * RPM_TO_RAD_S, 108.0),
                (5000.0 * RPM_TO_RAD_S, 105.0),
                (5500.0 * RPM_TO_RAD_S, 98.0),
            ],
            idle_speed_rad_s: 1000.0 * RPM_TO_RAD_S,
            max_speed_rad_s: 5500.0 * RPM_TO_RAD_S,
            peak_efficiency: 0.36,
            best_load_ratio: 0.8,
            load_span: 0.9,
            best_speed_rad_s: 2500.0 * RPM_TO_RAD_S,
            speed_span_rad_s: 500.0,
            idle_fuel_g_per_s: 0.15,
            start_fuel_penalty_g: 0.25,
            fuel_lhv_j_per_g: FUEL_LHV_J_PER_G,
        }
    }
}

/// Electric-machine parameters (loss-model formulation of Eq. 3–4).
///
/// Losses follow the standard separable model
/// `P_loss = k_c·T² + k_i·ω + k_w·ω³ + c0`, which is analytically
/// invertible: given an electrical power and shaft speed the torque is the
/// root of a quadratic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotorParams {
    /// Continuous torque limit below base speed, N·m.
    pub max_torque_nm: f64,
    /// Rated (continuous) power, W; above base speed the torque envelope
    /// is `rated_power / ω`.
    pub rated_power_w: f64,
    /// Maximum shaft speed, rad/s.
    pub max_speed_rad_s: f64,
    /// Copper-loss coefficient `k_c`, W/(N·m)².
    pub copper_loss: f64,
    /// Iron-loss coefficient `k_i`, W/(rad/s).
    pub iron_loss: f64,
    /// Windage-loss coefficient `k_w`, W/(rad/s)³.
    pub windage_loss: f64,
    /// Constant electronics loss `c0`, W (applies whenever the machine is
    /// energized).
    pub constant_loss: f64,
}

impl MotorParams {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] naming the first violated field.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.max_torque_nm <= 0.0 {
            return Err(ParamError::new("max_torque_nm", "must be positive"));
        }
        if self.rated_power_w <= 0.0 {
            return Err(ParamError::new("rated_power_w", "must be positive"));
        }
        if self.max_speed_rad_s <= 0.0 {
            return Err(ParamError::new("max_speed_rad_s", "must be positive"));
        }
        if self.copper_loss <= 0.0 {
            return Err(ParamError::new("copper_loss", "must be positive"));
        }
        if self.iron_loss < 0.0 || self.windage_loss < 0.0 || self.constant_loss < 0.0 {
            return Err(ParamError::new(
                "iron_loss",
                "loss terms must be non-negative",
            ));
        }
        Ok(())
    }

    /// Base speed: the speed where the constant-torque and constant-power
    /// envelopes meet, rad/s.
    pub fn base_speed_rad_s(&self) -> f64 {
        self.rated_power_w / self.max_torque_nm
    }
}

impl Default for MotorParams {
    fn default() -> Self {
        Self {
            max_torque_nm: 85.0,
            rated_power_w: 25_000.0,
            max_speed_rad_s: 1047.0, // 10 000 rpm
            copper_loss: 0.40,
            iron_loss: 0.60,
            windage_loss: 2.0e-7,
            constant_loss: 50.0,
        }
    }
}

/// Optional lumped thermal model of the battery pack.
///
/// Joule heat `R·i²` warms the pack; Newtonian cooling relaxes it toward
/// ambient; internal resistance scales with temperature (cold packs are
/// stiffer). Disabled by default so the calibrated baseline behaviour is
/// unchanged; enable via [`BatteryParams::thermal`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryThermalParams {
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// Initial pack temperature, °C.
    pub initial_c: f64,
    /// Lumped heat capacity of the pack, J/K.
    pub heat_capacity_j_per_k: f64,
    /// Convective cooling coefficient, W/K.
    pub cooling_w_per_k: f64,
    /// Relative resistance increase per kelvin *below* the reference
    /// temperature (cold penalty); resistance at and above the reference
    /// is the nominal value.
    pub cold_resistance_per_k: f64,
    /// Reference temperature for the resistance law, °C.
    pub reference_c: f64,
}

impl Default for BatteryThermalParams {
    fn default() -> Self {
        Self {
            ambient_c: 25.0,
            initial_c: 25.0,
            heat_capacity_j_per_k: 30_000.0,
            cooling_w_per_k: 15.0,
            cold_resistance_per_k: 0.02,
            reference_c: 25.0,
        }
    }
}

impl BatteryThermalParams {
    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] naming the first violated field.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.heat_capacity_j_per_k <= 0.0 {
            return Err(ParamError::new("heat_capacity_j_per_k", "must be positive"));
        }
        if self.cooling_w_per_k < 0.0 {
            return Err(ParamError::new("cooling_w_per_k", "must be non-negative"));
        }
        if self.cold_resistance_per_k < 0.0 {
            return Err(ParamError::new(
                "cold_resistance_per_k",
                "must be non-negative",
            ));
        }
        Ok(())
    }
}

/// Battery-pack parameters (Rint equivalent-circuit model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryParams {
    /// Pack capacity, ampere-hours.
    pub capacity_ah: f64,
    /// Open-circuit voltage at 0 % state of charge, V.
    pub ocv_at_empty_v: f64,
    /// Open-circuit-voltage rise from 0 % to 100 % state of charge, V.
    pub ocv_span_v: f64,
    /// Internal resistance while discharging, Ω.
    pub resistance_discharge_ohm: f64,
    /// Internal resistance while charging, Ω.
    pub resistance_charge_ohm: f64,
    /// Maximum discharge current, A (positive).
    pub max_discharge_a: f64,
    /// Maximum charge current magnitude, A (positive).
    pub max_charge_a: f64,
    /// Lower bound of the charge-sustaining window (fraction of capacity).
    pub soc_min: f64,
    /// Upper bound of the charge-sustaining window (fraction of capacity).
    pub soc_max: f64,
    /// Optional lumped thermal model; `None` (default) disables it.
    pub thermal: Option<BatteryThermalParams>,
}

impl BatteryParams {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] naming the first violated field.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.capacity_ah <= 0.0 {
            return Err(ParamError::new("capacity_ah", "must be positive"));
        }
        if self.ocv_at_empty_v <= 0.0 || self.ocv_span_v < 0.0 {
            return Err(ParamError::new(
                "ocv_at_empty_v",
                "voltages must be positive",
            ));
        }
        if self.resistance_discharge_ohm <= 0.0 || self.resistance_charge_ohm <= 0.0 {
            return Err(ParamError::new(
                "resistance_discharge_ohm",
                "resistances must be positive",
            ));
        }
        if self.max_discharge_a <= 0.0 || self.max_charge_a <= 0.0 {
            return Err(ParamError::new(
                "max_discharge_a",
                "current limits must be positive",
            ));
        }
        if !(0.0 <= self.soc_min && self.soc_min < self.soc_max && self.soc_max <= 1.0) {
            return Err(ParamError::new(
                "soc_min",
                "need 0 <= soc_min < soc_max <= 1",
            ));
        }
        if let Some(thermal) = &self.thermal {
            thermal.validate()?;
        }
        Ok(())
    }

    /// Nominal energy content of the pack at mid-window OCV, Wh.
    pub fn nominal_energy_wh(&self) -> f64 {
        let mid_ocv = self.ocv_at_empty_v + 0.5 * self.ocv_span_v;
        mid_ocv * self.capacity_ah
    }
}

impl Default for BatteryParams {
    fn default() -> Self {
        Self {
            capacity_ah: 26.0,
            ocv_at_empty_v: 270.0,
            ocv_span_v: 60.0,
            resistance_discharge_ohm: 0.30,
            resistance_charge_ohm: 0.36,
            max_discharge_a: 120.0,
            max_charge_a: 80.0,
            soc_min: 0.40,
            soc_max: 0.80,
            thermal: None,
        }
    }
}

/// Gearbox and torque-coupling parameters (Eq. 8–10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrivetrainParams {
    /// Overall ratio per gear `R(k)` (gearbox × final drive), indexed by
    /// gear number starting at 0; strictly decreasing.
    pub gear_ratios: Vec<f64>,
    /// Gearbox efficiency `η_gb`.
    pub gearbox_efficiency: f64,
    /// Ratio `ρ_reg` of the reduction gear coupling the motor to the shaft.
    pub reduction_ratio: f64,
    /// Reduction-gear efficiency `η_reg`.
    pub reduction_efficiency: f64,
}

impl DrivetrainParams {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] naming the first violated field.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.gear_ratios.is_empty() {
            return Err(ParamError::new("gear_ratios", "need at least one gear"));
        }
        if self.gear_ratios.iter().any(|&r| r <= 0.0) {
            return Err(ParamError::new("gear_ratios", "ratios must be positive"));
        }
        for w in self.gear_ratios.windows(2) {
            if w[1] >= w[0] {
                return Err(ParamError::new(
                    "gear_ratios",
                    "ratios must be strictly decreasing from 1st gear",
                ));
            }
        }
        if !(self.gearbox_efficiency > 0.0 && self.gearbox_efficiency <= 1.0) {
            return Err(ParamError::new("gearbox_efficiency", "must be in (0, 1]"));
        }
        if self.reduction_ratio <= 0.0 {
            return Err(ParamError::new("reduction_ratio", "must be positive"));
        }
        if !(self.reduction_efficiency > 0.0 && self.reduction_efficiency <= 1.0) {
            return Err(ParamError::new("reduction_efficiency", "must be in (0, 1]"));
        }
        Ok(())
    }

    /// Number of gears.
    pub fn num_gears(&self) -> usize {
        self.gear_ratios.len()
    }
}

impl Default for DrivetrainParams {
    fn default() -> Self {
        // 5-speed box [3.45, 1.94, 1.28, 0.97, 0.76] × final drive 4.06.
        Self {
            gear_ratios: vec![14.01, 7.88, 5.20, 3.94, 3.09],
            gearbox_efficiency: 0.95,
            reduction_ratio: 2.0,
            reduction_efficiency: 0.97,
        }
    }
}

/// Auxiliary-system parameters (§2.1.5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuxParams {
    /// Base load that must always be supplied (ECU, lights minimum), W.
    pub min_power_w: f64,
    /// Maximum combined auxiliary power, W.
    pub max_power_w: f64,
    /// Most desirable operating power (peak of the utility function), W.
    /// The paper's evaluation uses 600 W.
    pub preferred_power_w: f64,
    /// Half-width of the utility parabola, W: utility reaches zero at
    /// `preferred ± scale`.
    pub utility_scale_w: f64,
}

impl AuxParams {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] naming the first violated field.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.min_power_w < 0.0 {
            return Err(ParamError::new("min_power_w", "must be non-negative"));
        }
        if self.max_power_w <= self.min_power_w {
            return Err(ParamError::new("max_power_w", "must exceed min_power_w"));
        }
        if !(self.min_power_w..=self.max_power_w).contains(&self.preferred_power_w) {
            return Err(ParamError::new(
                "preferred_power_w",
                "must lie within [min_power_w, max_power_w]",
            ));
        }
        if self.utility_scale_w <= 0.0 {
            return Err(ParamError::new("utility_scale_w", "must be positive"));
        }
        Ok(())
    }
}

impl Default for AuxParams {
    fn default() -> Self {
        Self {
            min_power_w: 100.0,
            max_power_w: 1500.0,
            preferred_power_w: 600.0,
            utility_scale_w: 600.0,
        }
    }
}

/// Complete parameter set for a parallel HEV.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HevParams {
    /// Chassis/tires.
    pub body: BodyParams,
    /// Engine.
    pub ice: IceParams,
    /// Electric machine.
    pub motor: MotorParams,
    /// Battery pack.
    pub battery: BatteryParams,
    /// Gearbox and coupling.
    pub drivetrain: DrivetrainParams,
    /// Auxiliary systems.
    pub aux: AuxParams,
}

impl HevParams {
    /// The default mid-size parallel HEV used throughout the reproduction
    /// (see module docs). Identical to `HevParams::default()`.
    pub fn default_parallel_hev() -> Self {
        Self::default()
    }

    /// A plug-in variant: a 3× battery with a wide 20–90 % usable window
    /// and a stronger machine. Exercises charge-depleting strategies
    /// (e.g. [`CdCs`]-style control) the charge-sustaining default cannot.
    ///
    /// [`CdCs`]: https://en.wikipedia.org/wiki/Plug-in_hybrid
    pub fn plugin_hybrid() -> Self {
        let mut p = Self::default();
        p.battery = BatteryParams {
            capacity_ah: 78.0,
            soc_min: 0.20,
            soc_max: 0.90,
            max_discharge_a: 180.0,
            max_charge_a: 120.0,
            ..p.battery
        };
        p.motor = MotorParams {
            rated_power_w: 60_000.0,
            max_torque_nm: 200.0,
            copper_loss: 0.18,
            ..p.motor
        };
        p
    }

    /// Validates every component parameter set.
    ///
    /// # Errors
    ///
    /// Returns the first [`ParamError`] found.
    pub fn validate(&self) -> Result<(), ParamError> {
        self.body.validate()?;
        self.ice.validate()?;
        self.motor.validate()?;
        self.battery.validate()?;
        self.drivetrain.validate()?;
        self.aux.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_validate() {
        HevParams::default_parallel_hev().validate().unwrap();
    }

    #[test]
    fn plugin_hybrid_validates_and_is_bigger() {
        let phev = HevParams::plugin_hybrid();
        phev.validate().unwrap();
        let hev = HevParams::default_parallel_hev();
        assert!(phev.battery.nominal_energy_wh() > 2.0 * hev.battery.nominal_energy_wh());
        assert!(phev.battery.soc_max - phev.battery.soc_min > 0.5);
        assert!(phev.motor.rated_power_w > hev.motor.rated_power_w);
    }

    #[test]
    fn rated_engine_power_near_57_kw() {
        let p = IceParams::default().rated_power_w();
        assert!((50_000.0..60_000.0).contains(&p), "rated {p} W");
    }

    #[test]
    fn motor_base_speed_reasonable() {
        let m = MotorParams::default();
        let base = m.base_speed_rad_s();
        assert!((200.0..400.0).contains(&base));
    }

    #[test]
    fn battery_energy_in_hev_range() {
        let e = BatteryParams::default().nominal_energy_wh();
        assert!((4_000.0..10_000.0).contains(&e), "energy {e} Wh");
    }

    #[test]
    fn body_rejects_negative_mass() {
        let b = BodyParams {
            mass_kg: -1.0,
            ..Default::default()
        };
        assert_eq!(b.validate().unwrap_err().field, "mass_kg");
    }

    #[test]
    fn ice_rejects_single_knot() {
        let mut p = IceParams::default();
        p.max_torque_curve.truncate(1);
        assert_eq!(p.validate().unwrap_err().field, "max_torque_curve");
    }

    #[test]
    fn ice_rejects_unsorted_curve() {
        let mut p = IceParams::default();
        p.max_torque_curve.swap(0, 1);
        assert!(p.validate().is_err());
    }

    #[test]
    fn battery_rejects_inverted_window() {
        let b = BatteryParams {
            soc_min: 0.9,
            ..Default::default()
        };
        assert_eq!(b.validate().unwrap_err().field, "soc_min");
    }

    #[test]
    fn drivetrain_rejects_increasing_ratios() {
        let d = DrivetrainParams {
            gear_ratios: vec![3.0, 5.0],
            ..Default::default()
        };
        assert!(d.validate().is_err());
    }

    #[test]
    fn aux_rejects_preferred_outside_range() {
        let a = AuxParams {
            preferred_power_w: 5_000.0,
            ..Default::default()
        };
        assert_eq!(a.validate().unwrap_err().field, "preferred_power_w");
    }

    #[test]
    fn gear_count_matches() {
        assert_eq!(DrivetrainParams::default().num_gears(), 5);
    }
}
