//! Longitudinal vehicle dynamics (paper Eq. 5–7).
//!
//! Backward-looking formulation: given the driver-imposed speed,
//! acceleration, and road grade, compute the tractive force, wheel torque,
//! wheel speed, and propulsion power demand.

use crate::error::ParamError;
use crate::params::{BodyParams, AIR_DENSITY, GRAVITY};
use serde::{Deserialize, Serialize};

/// Demand at the wheels for one simulation step.
///
/// The `Default` value is the all-zero demand: stationary on flat road.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WheelDemand {
    /// Vehicle speed, m/s.
    pub speed_mps: f64,
    /// Vehicle acceleration, m/s².
    pub accel_mps2: f64,
    /// Road grade (dimensionless slope).
    pub grade: f64,
    /// Tractive force `F_TR`, N (negative while braking).
    pub tractive_force_n: f64,
    /// Wheel torque `T_wh`, N·m.
    pub wheel_torque_nm: f64,
    /// Wheel speed `ω_wh`, rad/s.
    pub wheel_speed_rad_s: f64,
    /// Propulsion power demand `p_dem = F_TR·v`, W.
    pub power_demand_w: f64,
}

/// Rigid-body longitudinal vehicle model.
///
/// # Examples
///
/// ```
/// use hev_model::{BodyParams, VehicleBody};
///
/// let body = VehicleBody::new(BodyParams::default())?;
/// let demand = body.demand(15.0, 0.5, 0.0); // 54 km/h, gentle accel
/// assert!(demand.power_demand_w > 0.0);
/// # Ok::<(), hev_model::ParamError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VehicleBody {
    params: BodyParams,
}

impl VehicleBody {
    /// Creates a body model from validated parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if the parameters are invalid.
    pub fn new(params: BodyParams) -> Result<Self, ParamError> {
        params.validate()?;
        Ok(Self { params })
    }

    /// The body parameters.
    pub fn params(&self) -> &BodyParams {
        &self.params
    }

    /// Tractive force `F_TR = m·a + F_g + F_R + F_AD` (Eq. 5), N.
    ///
    /// Rolling resistance only applies while moving.
    pub fn tractive_force(&self, speed_mps: f64, accel_mps2: f64, grade: f64) -> f64 {
        let p = &self.params;
        let theta = grade.atan();
        let m_eff = p.mass_kg * p.rotating_mass_factor;
        let f_inertia = m_eff * accel_mps2;
        let f_grade = p.mass_kg * GRAVITY * theta.sin();
        let f_roll = if speed_mps > 1e-3 {
            p.mass_kg * GRAVITY * theta.cos() * p.rolling_coefficient
        } else {
            0.0
        };
        let f_drag =
            0.5 * AIR_DENSITY * p.drag_coefficient * p.frontal_area_m2 * speed_mps * speed_mps;
        f_inertia + f_grade + f_roll + f_drag
    }

    /// Wheel speed `ω_wh = v / r_wh` (Eq. 6), rad/s.
    pub fn wheel_speed(&self, speed_mps: f64) -> f64 {
        speed_mps / self.params.wheel_radius_m
    }

    /// Complete wheel-level demand for a `(v, a, grade)` sample
    /// (Eq. 5–7).
    pub fn demand(&self, speed_mps: f64, accel_mps2: f64, grade: f64) -> WheelDemand {
        let f = self.tractive_force(speed_mps, accel_mps2, grade);
        WheelDemand {
            speed_mps,
            accel_mps2,
            grade,
            tractive_force_n: f,
            wheel_torque_nm: f * self.params.wheel_radius_m,
            wheel_speed_rad_s: self.wheel_speed(speed_mps),
            power_demand_w: f * speed_mps,
        }
    }

    /// Batched form of [`VehicleBody::demand`]: appends one demand per
    /// `(v, a)` sample of a cycle at constant `grade`, reusing `out`'s
    /// allocation. Each element is exactly what the scalar call returns
    /// for the same sample — consumers that precompute a whole cycle's
    /// demands (the DP solver's per-timestep sweep) stay bit-identical
    /// to per-step construction.
    pub fn demands_into(
        &self,
        speeds_mps: &[f64],
        accels_mps2: &[f64],
        grade: f64,
        out: &mut Vec<WheelDemand>,
    ) {
        out.clear();
        let n = speeds_mps.len().min(accels_mps2.len());
        out.reserve(n);
        for k in 0..n {
            out.push(self.demand(speeds_mps[k], accels_mps2[k], grade));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body() -> VehicleBody {
        VehicleBody::new(BodyParams::default()).unwrap()
    }

    #[test]
    fn cruise_force_is_resistive_only() {
        let b = body();
        let f = b.tractive_force(20.0, 0.0, 0.0);
        let expected_roll = 1350.0 * GRAVITY * 0.009;
        let expected_drag = 0.5 * AIR_DENSITY * 0.30 * 2.0 * 400.0;
        assert!((f - (expected_roll + expected_drag)).abs() < 1e-9);
    }

    #[test]
    fn acceleration_dominates_at_low_speed() {
        let b = body();
        let f = b.tractive_force(5.0, 1.5, 0.0);
        assert!(f > 1350.0 * 1.04 * 1.5);
        assert!(f < 1350.0 * 1.04 * 1.5 + 400.0);
    }

    #[test]
    fn braking_force_is_negative() {
        let b = body();
        assert!(b.tractive_force(15.0, -2.0, 0.0) < 0.0);
    }

    #[test]
    fn uphill_adds_grade_force() {
        let b = body();
        let flat = b.tractive_force(15.0, 0.0, 0.0);
        let hill = b.tractive_force(15.0, 0.0, 0.05);
        assert!(hill - flat > 1350.0 * GRAVITY * 0.049);
    }

    #[test]
    fn downhill_can_require_braking() {
        let b = body();
        assert!(b.tractive_force(5.0, 0.0, -0.10) < 0.0);
    }

    #[test]
    fn no_rolling_resistance_at_rest() {
        let b = body();
        assert_eq!(b.tractive_force(0.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn power_equals_torque_times_speed() {
        let b = body();
        let d = b.demand(20.0, 0.3, 0.01);
        assert!((d.power_demand_w - d.wheel_torque_nm * d.wheel_speed_rad_s).abs() < 1e-6);
    }

    #[test]
    fn wheel_speed_scales_with_radius() {
        let b = body();
        assert!((b.wheel_speed(28.2) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn demands_into_matches_scalar_demand() {
        let b = body();
        let speeds = [0.0, 5.0, 15.0, 27.8];
        let accels = [0.0, 1.2, -0.8, 0.0];
        let mut out = vec![b.demand(99.0, 9.0, 0.0)]; // stale entry must be cleared
        b.demands_into(&speeds, &accels, 0.01, &mut out);
        assert_eq!(out.len(), 4);
        for k in 0..4 {
            assert_eq!(out[k], b.demand(speeds[k], accels[k], 0.01));
        }
    }

    #[test]
    fn highway_cruise_power_realistic() {
        // ~100 km/h cruise should demand roughly 10–20 kW for this class.
        let b = body();
        let d = b.demand(27.8, 0.0, 0.0);
        assert!(
            (8_000.0..22_000.0).contains(&d.power_demand_w),
            "power {}",
            d.power_demand_w
        );
    }
}
