//! Evaluation-counting shim over [`hev_trace::evals`].
//!
//! The thread-local peek-equivalent evaluation counter used to live
//! here; it migrated to `hev-trace` so the telemetry registry, the
//! benchmark harness, and the vehicle model all share one counter. This
//! module keeps the vehicle model's call site (`record_eval`) crate-
//! internal — consumers read counts through `hev_trace::evals` directly,
//! not through `hev_model`.

/// Records one peek-equivalent evaluation (called by the vehicle model).
#[inline]
pub(crate) fn record_eval() {
    hev_trace::evals::record();
}

/// Records one batched sweep of `lanes` peek-equivalent evaluations
/// (called by the batch kernel): the counter advances by one per *lane*,
/// so per-step evaluation costs stay comparable between the scalar and
/// batched paths.
#[inline]
pub(crate) fn record_batch(lanes: u64) {
    hev_trace::evals::record_batch(lanes);
}
