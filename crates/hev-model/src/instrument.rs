//! Lightweight evaluation counters for performance instrumentation.
//!
//! Every control step of the RL controller pays many *peek-equivalent
//! evaluations* — feasibility probes, inner-optimization grid points,
//! ternary-search refinements — and the per-step evaluation count is the
//! quantity the staged [`StepContext`](crate::vehicle::StepContext)
//! pipeline amortizes. The counter here makes that count observable so
//! the benchmark harness (`repro --bench-json`) can report evaluations
//! per step alongside wall-clock throughput.
//!
//! The counter is thread-local: incrementing it costs a few nanoseconds
//! and never contends across the parallel training harness's workers.
//! Callers that want a complete count therefore run their measured
//! workload single-threaded (the harness's `--jobs 1` mode) or sum the
//! counts inside each worker.

use std::cell::Cell;

thread_local! {
    static EVALS: Cell<u64> = const { Cell::new(0) };
}

/// Number of peek-equivalent evaluations recorded on this thread since
/// the last [`reset_evals`].
pub fn evals() -> u64 {
    EVALS.with(Cell::get)
}

/// Resets this thread's evaluation counter to zero.
pub fn reset_evals() {
    EVALS.with(|c| c.set(0));
}

/// Records one peek-equivalent evaluation (called by the vehicle model).
pub(crate) fn record_eval() {
    EVALS.with(|c| c.set(c.get().wrapping_add(1)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        reset_evals();
        assert_eq!(evals(), 0);
        record_eval();
        record_eval();
        assert_eq!(evals(), 2);
        reset_evals();
        assert_eq!(evals(), 0);
    }
}
