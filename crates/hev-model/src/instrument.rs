//! Evaluation-counting shim over [`hev_trace::evals`].
//!
//! The thread-local peek-equivalent evaluation counter used to live
//! here; it migrated to `hev-trace` so the telemetry registry, the
//! benchmark harness, and the vehicle model all share one counter. This
//! module keeps the vehicle model's call site (`record_eval`) crate-
//! internal — consumers read counts through `hev_trace::evals` directly,
//! not through `hev_model`.

/// Records one peek-equivalent evaluation (called by the vehicle model).
#[inline]
pub(crate) fn record_eval() {
    hev_trace::evals::record();
}

/// Records one batched sweep of `lanes` peek-equivalent evaluations
/// (called by the batch kernel): the counter advances by one per *lane*,
/// so per-step evaluation costs stay comparable between the scalar and
/// batched paths.
#[inline]
pub(crate) fn record_batch(lanes: u64) {
    hev_trace::evals::record_batch(lanes);
}

/// Records one `StepContext` rebuild (called by
/// `ParallelHev::rebuild_context`). The cycle-level context table
/// amortizes these to one per (cycle, vehicle-config) pair.
#[inline]
pub(crate) fn record_ctx_rebuild() {
    hev_trace::evals::record_ctx_rebuild();
}

/// Records one hit in the keyed `CurrentContext` cache.
#[inline]
pub(crate) fn record_ctx_cache_hit() {
    hev_trace::evals::record_ctx_cache_hit();
}

/// Records one miss in the keyed `CurrentContext` cache.
#[inline]
pub(crate) fn record_ctx_cache_miss() {
    hev_trace::evals::record_ctx_cache_miss();
}
