//! Quasi-static internal-combustion-engine model (paper Eq. 1–2).
//!
//! The fuel efficiency is `η_ICE(T, ω) = T·ω / (ṁ_f · D_f)`; we model the
//! brake-efficiency surface directly as a separable product of a load
//! parabola and a speed parabola — the characteristic shape of SI-engine
//! maps used by quasi-static simulators such as ADVISOR — and derive the
//! fuel rate `ṁ_f = T·ω / (η·D_f)` from it.

use crate::error::ParamError;
use crate::params::IceParams;
use serde::{Deserialize, Serialize};

/// Minimum efficiency the parametric map is clamped to, so the fuel rate
/// stays finite at extreme operating points.
const MIN_EFFICIENCY: f64 = 0.04;

/// Quasi-static engine model.
///
/// # Examples
///
/// ```
/// use hev_model::{Engine, IceParams};
///
/// let engine = Engine::new(IceParams::default())?;
/// let w = 300.0; // rad/s
/// let t = 0.5 * engine.max_torque(w);
/// assert!(engine.efficiency(t, w) > 0.2);
/// assert!(engine.fuel_rate(t, w) > 0.0);
/// # Ok::<(), hev_model::ParamError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Engine {
    params: IceParams,
}

impl Engine {
    /// Creates an engine from validated parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if the parameters are invalid.
    pub fn new(params: IceParams) -> Result<Self, ParamError> {
        params.validate()?;
        Ok(Self { params })
    }

    /// The engine's parameters.
    pub fn params(&self) -> &IceParams {
        &self.params
    }

    /// Minimum running speed (idle), rad/s.
    pub fn min_speed(&self) -> f64 {
        self.params.idle_speed_rad_s
    }

    /// Maximum speed (redline), rad/s.
    pub fn max_speed(&self) -> f64 {
        self.params.max_speed_rad_s
    }

    /// Whether `speed` lies in the engine's running range.
    pub fn speed_in_range(&self, speed_rad_s: f64) -> bool {
        (self.params.idle_speed_rad_s..=self.params.max_speed_rad_s).contains(&speed_rad_s)
    }

    /// Wide-open-throttle torque at the given speed, N·m (Eq. 2's
    /// `T_ICE^max(ω)`), linearly interpolated from the torque curve and
    /// clamped to the curve's endpoints outside its speed range.
    pub fn max_torque(&self, speed_rad_s: f64) -> f64 {
        let curve = &self.params.max_torque_curve;
        if speed_rad_s <= curve[0].0 {
            return curve[0].1;
        }
        for w in curve.windows(2) {
            let (w0, t0) = w[0];
            let (w1, t1) = w[1];
            if speed_rad_s <= w1 {
                let f = (speed_rad_s - w0) / (w1 - w0);
                return t0 + f * (t1 - t0);
            }
        }
        curve[curve.len() - 1].1
    }

    /// Brake thermal efficiency at operating point `(T, ω)` (Eq. 1).
    ///
    /// Returns 0 for non-positive torque or power (the engine does not
    /// absorb power).
    pub fn efficiency(&self, torque_nm: f64, speed_rad_s: f64) -> f64 {
        self.efficiency_with_wot(torque_nm, speed_rad_s, self.max_torque(speed_rad_s))
    }

    /// The speed parabola of the separable efficiency surface — the whole
    /// speed-dependent subexpression of [`Engine::efficiency`], exposed so
    /// hot callers evaluating many torques at one speed can hoist it.
    #[inline]
    pub(crate) fn speed_factor(&self, speed_rad_s: f64) -> f64 {
        let p = &self.params;
        1.0 - ((speed_rad_s - p.best_speed_rad_s) / p.speed_span_rad_s).powi(2)
    }

    /// [`Engine::efficiency`] with the wide-open-throttle torque at
    /// `speed_rad_s` precomputed by [`Engine::max_torque`]; exact same
    /// arithmetic. Hot callers that evaluate many torques at one speed
    /// hoist the curve interpolation out of the loop.
    pub(crate) fn efficiency_with_wot(
        &self,
        torque_nm: f64,
        speed_rad_s: f64,
        wot_torque_nm: f64,
    ) -> f64 {
        self.efficiency_with_pre(
            torque_nm,
            speed_rad_s,
            wot_torque_nm,
            self.speed_factor(speed_rad_s),
        )
    }

    /// [`Engine::efficiency_with_wot`] with the speed parabola also
    /// precomputed by [`Engine::speed_factor`]; exact same arithmetic.
    #[inline]
    pub(crate) fn efficiency_with_pre(
        &self,
        torque_nm: f64,
        speed_rad_s: f64,
        wot_torque_nm: f64,
        speed_factor: f64,
    ) -> f64 {
        if torque_nm <= 0.0 || speed_rad_s <= 0.0 {
            return 0.0;
        }
        let p = &self.params;
        let load = (torque_nm / wot_torque_nm).min(1.0);
        let load_factor = 1.0 - ((load - p.best_load_ratio) / p.load_span).powi(2);
        (p.peak_efficiency * load_factor.max(0.0) * speed_factor.max(0.0)).max(MIN_EFFICIENCY)
    }

    /// Fuel mass flow `ṁ_f` at operating point `(T, ω)`, g/s.
    ///
    /// With zero torque at (or above) idle speed the engine consumes the
    /// idle fuel rate; a stopped engine (`ω = 0`) consumes nothing
    /// (automatic stop-start).
    pub fn fuel_rate(&self, torque_nm: f64, speed_rad_s: f64) -> f64 {
        if speed_rad_s <= 0.0 {
            return 0.0;
        }
        if torque_nm <= 0.0 {
            return self.params.idle_fuel_g_per_s;
        }
        self.fuel_rate_with_wot(torque_nm, speed_rad_s, self.max_torque(speed_rad_s))
    }

    /// [`Engine::fuel_rate`] with the wide-open-throttle torque at
    /// `speed_rad_s` precomputed by [`Engine::max_torque`]; exact same
    /// arithmetic.
    pub(crate) fn fuel_rate_with_wot(
        &self,
        torque_nm: f64,
        speed_rad_s: f64,
        wot_torque_nm: f64,
    ) -> f64 {
        self.fuel_rate_with_pre(
            torque_nm,
            speed_rad_s,
            wot_torque_nm,
            self.speed_factor(speed_rad_s),
        )
    }

    /// [`Engine::fuel_rate_with_wot`] with the speed parabola also
    /// precomputed by [`Engine::speed_factor`]; exact same arithmetic.
    #[inline]
    pub(crate) fn fuel_rate_with_pre(
        &self,
        torque_nm: f64,
        speed_rad_s: f64,
        wot_torque_nm: f64,
        speed_factor: f64,
    ) -> f64 {
        if speed_rad_s <= 0.0 {
            return 0.0;
        }
        if torque_nm <= 0.0 {
            return self.params.idle_fuel_g_per_s;
        }
        let power_w = torque_nm * speed_rad_s;
        power_w
            / (self.efficiency_with_pre(torque_nm, speed_rad_s, wot_torque_nm, speed_factor)
                * self.params.fuel_lhv_j_per_g)
    }

    /// The operating point `(T, ω)` is inside the feasible envelope of
    /// Eq. 2.
    pub fn operating_point_feasible(&self, torque_nm: f64, speed_rad_s: f64) -> bool {
        self.speed_in_range(speed_rad_s)
            && torque_nm >= 0.0
            && torque_nm <= self.max_torque(speed_rad_s)
    }

    /// Samples the brake-efficiency surface on an `n_speed × n_load`
    /// grid, returning `(speed rad/s, torque N·m, efficiency)` triples —
    /// the raw material for the classic BSFC contour plot.
    ///
    /// # Panics
    ///
    /// Panics if either grid dimension is zero.
    pub fn efficiency_map(&self, n_speed: usize, n_load: usize) -> Vec<(f64, f64, f64)> {
        assert!(
            n_speed > 0 && n_load > 0,
            "grid dimensions must be positive"
        );
        let p = &self.params;
        let mut out = Vec::with_capacity(n_speed * n_load);
        for i in 0..n_speed {
            let w = p.idle_speed_rad_s
                + (p.max_speed_rad_s - p.idle_speed_rad_s) * (i as f64 + 0.5) / n_speed as f64;
            for j in 0..n_load {
                let t = self.max_torque(w) * (j as f64 + 0.5) / n_load as f64;
                out.push((w, t, self.efficiency(t, w)));
            }
        }
        out
    }

    /// The speed (rad/s) at which delivering `power_w` is most efficient,
    /// found by scanning the running range. Used by baseline controllers.
    pub fn best_speed_for_power(&self, power_w: f64) -> f64 {
        let mut best = self.params.idle_speed_rad_s;
        let mut best_eff = 0.0;
        let n = 40;
        for k in 0..=n {
            let w = self.params.idle_speed_rad_s
                + (self.params.max_speed_rad_s - self.params.idle_speed_rad_s) * k as f64
                    / n as f64;
            let t = power_w / w;
            if t > self.max_torque(w) {
                continue;
            }
            let eff = self.efficiency(t, w);
            if eff > best_eff {
                best_eff = eff;
                best = w;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RPM_TO_RAD_S;

    fn engine() -> Engine {
        Engine::new(IceParams::default()).unwrap()
    }

    #[test]
    fn max_torque_interpolates_between_knots() {
        let e = engine();
        let t = e.max_torque(1500.0 * RPM_TO_RAD_S);
        assert!((t - 85.0).abs() < 1.0, "torque {t}");
    }

    #[test]
    fn max_torque_clamps_outside_curve() {
        let e = engine();
        assert_eq!(e.max_torque(0.0), 75.0);
        assert_eq!(e.max_torque(10_000.0), 98.0);
    }

    #[test]
    fn efficiency_peaks_near_design_point() {
        let e = engine();
        let w_best = e.params().best_speed_rad_s;
        let t_best = e.params().best_load_ratio * e.max_torque(w_best);
        let peak = e.efficiency(t_best, w_best);
        assert!((peak - 0.36).abs() < 1e-6);
        // Anywhere else is no better.
        for &w in &[150.0, 250.0, 400.0, 550.0] {
            for load in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
                let t = load * e.max_torque(w);
                assert!(e.efficiency(t, w) <= peak + 1e-9);
            }
        }
    }

    #[test]
    fn efficiency_zero_for_nonpositive_torque() {
        let e = engine();
        assert_eq!(e.efficiency(0.0, 300.0), 0.0);
        assert_eq!(e.efficiency(-10.0, 300.0), 0.0);
    }

    #[test]
    fn low_load_efficiency_is_poor() {
        let e = engine();
        let w = 300.0;
        let low = e.efficiency(0.05 * e.max_torque(w), w);
        let good = e.efficiency(0.8 * e.max_torque(w), w);
        assert!(low < 0.5 * good, "low {low} good {good}");
    }

    #[test]
    fn fuel_rate_consistent_with_efficiency() {
        let e = engine();
        let (t, w) = (60.0, 300.0);
        let mdot = e.fuel_rate(t, w);
        let eta = t * w / (mdot * e.params().fuel_lhv_j_per_g);
        assert!((eta - e.efficiency(t, w)).abs() < 1e-9);
    }

    #[test]
    fn fuel_rate_monotone_in_torque_at_fixed_speed() {
        let e = engine();
        let w = 300.0;
        let mut prev = 0.0;
        for load in [0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0] {
            let rate = e.fuel_rate(load * e.max_torque(w), w);
            assert!(rate > prev, "fuel must rise with torque");
            prev = rate;
        }
    }

    #[test]
    fn stopped_engine_burns_nothing() {
        assert_eq!(engine().fuel_rate(0.0, 0.0), 0.0);
    }

    #[test]
    fn idling_engine_burns_idle_rate() {
        let e = engine();
        assert_eq!(e.fuel_rate(0.0, e.min_speed()), 0.15);
    }

    #[test]
    fn feasibility_envelope() {
        let e = engine();
        assert!(e.operating_point_feasible(50.0, 300.0));
        assert!(!e.operating_point_feasible(500.0, 300.0)); // torque too high
        assert!(!e.operating_point_feasible(50.0, 50.0)); // below idle
        assert!(!e.operating_point_feasible(50.0, 700.0)); // above redline
        assert!(!e.operating_point_feasible(-5.0, 300.0)); // negative torque
    }

    #[test]
    fn best_speed_for_power_is_in_range() {
        let e = engine();
        for p in [5_000.0, 15_000.0, 30_000.0] {
            let w = e.best_speed_for_power(p);
            assert!(e.speed_in_range(w));
            assert!(p / w <= e.max_torque(w) + 1e-9);
        }
    }

    #[test]
    fn rejects_invalid_params() {
        let p = IceParams {
            peak_efficiency: 0.9,
            ..Default::default()
        };
        assert!(Engine::new(p).is_err());
    }

    #[test]
    fn efficiency_map_covers_envelope() {
        let e = engine();
        let map = e.efficiency_map(8, 6);
        assert_eq!(map.len(), 48);
        for &(w, t, eta) in &map {
            assert!(e.speed_in_range(w));
            assert!(t >= 0.0 && t <= e.max_torque(w));
            assert!(eta > 0.0 && eta <= e.params().peak_efficiency);
        }
        // The map contains points near the peak.
        let best = map.iter().map(|&(_, _, eta)| eta).fold(0.0, f64::max);
        assert!(best > 0.30, "best sampled efficiency {best}");
    }
}
