//! Drivetrain mechanics: gearbox and ICE/EM torque coupling
//! (paper Eq. 8–10).

use crate::error::{InfeasibleControl, ParamError};
use crate::params::DrivetrainParams;
use serde::{Deserialize, Serialize};

/// Gearbox plus the reduction gear coupling the electric machine to the
/// engine shaft.
///
/// Speeds follow Eq. 8: `ω_wh = ω_ICE / R(k) = ω_EM / (R(k)·ρ_reg)`, and
/// torques `T_wh = R(k)·(T_ICE + ρ_reg·T_EM·η_reg^α)·η_gb^β` with the sign
/// exponents of Eq. 9–10.
///
/// # Examples
///
/// ```
/// use hev_model::{Drivetrain, DrivetrainParams};
///
/// let dt = Drivetrain::new(DrivetrainParams::default())?;
/// let w_wh = 40.0;
/// assert!(dt.ice_speed(w_wh, 0) > dt.ice_speed(w_wh, 4)); // 1st gear spins faster
/// # Ok::<(), hev_model::ParamError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Drivetrain {
    params: DrivetrainParams,
}

impl Drivetrain {
    /// Creates a drivetrain from validated parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if the parameters are invalid.
    pub fn new(params: DrivetrainParams) -> Result<Self, ParamError> {
        params.validate()?;
        Ok(Self { params })
    }

    /// The drivetrain parameters.
    pub fn params(&self) -> &DrivetrainParams {
        &self.params
    }

    /// Number of gears.
    #[inline]
    pub fn num_gears(&self) -> usize {
        self.params.gear_ratios.len()
    }

    /// Overall ratio `R(k)` of gear `k`.
    ///
    /// # Errors
    ///
    /// Returns [`InfeasibleControl::InvalidGear`] for an out-of-range
    /// index.
    #[inline]
    pub fn ratio(&self, gear: usize) -> Result<f64, InfeasibleControl> {
        self.params
            .gear_ratios
            .get(gear)
            .copied()
            .ok_or(InfeasibleControl::InvalidGear {
                gear,
                num_gears: self.num_gears(),
            })
    }

    /// Engine shaft speed for a wheel speed in gear `k`, rad/s (Eq. 8).
    ///
    /// # Panics
    ///
    /// Panics if `gear` is out of range (use [`Drivetrain::ratio`] to
    /// validate first).
    pub fn ice_speed(&self, wheel_speed_rad_s: f64, gear: usize) -> f64 {
        wheel_speed_rad_s * self.params.gear_ratios[gear]
    }

    /// Electric-machine shaft speed for a wheel speed in gear `k`, rad/s
    /// (Eq. 8).
    ///
    /// # Panics
    ///
    /// Panics if `gear` is out of range.
    pub fn em_speed(&self, wheel_speed_rad_s: f64, gear: usize) -> f64 {
        self.ice_speed(wheel_speed_rad_s, gear) * self.params.reduction_ratio
    }

    /// The electric machine's torque contribution at the engine shaft:
    /// `ρ_reg·T_EM·η_reg^α` with α per Eq. 9.
    pub fn em_shaft_torque(&self, em_torque_nm: f64) -> f64 {
        let p = &self.params;
        if em_torque_nm >= 0.0 {
            p.reduction_ratio * em_torque_nm * p.reduction_efficiency
        } else {
            p.reduction_ratio * em_torque_nm / p.reduction_efficiency
        }
    }

    /// Wheel torque produced by engine torque `T_ICE` and machine torque
    /// `T_EM` in gear `k` (Eq. 8–10).
    ///
    /// # Panics
    ///
    /// Panics if `gear` is out of range.
    pub fn wheel_torque(&self, ice_torque_nm: f64, em_torque_nm: f64, gear: usize) -> f64 {
        let p = &self.params;
        let coupled = ice_torque_nm + self.em_shaft_torque(em_torque_nm);
        let eta_gb = if coupled >= 0.0 {
            p.gearbox_efficiency
        } else {
            1.0 / p.gearbox_efficiency
        };
        p.gear_ratios[gear] * coupled * eta_gb
    }

    /// The combined shaft torque `T_ICE + ρ_reg·T_EM·η_reg^α` required to
    /// realize wheel torque `T_wh` in gear `k` (inverse of Eq. 8).
    ///
    /// # Panics
    ///
    /// Panics if `gear` is out of range.
    pub fn required_shaft_torque(&self, wheel_torque_nm: f64, gear: usize) -> f64 {
        let p = &self.params;
        let r = p.gear_ratios[gear];
        // The coupled torque has the same sign as the wheel torque, so the
        // gearbox exponent β follows the wheel-torque sign.
        if wheel_torque_nm >= 0.0 {
            wheel_torque_nm / (r * p.gearbox_efficiency)
        } else {
            wheel_torque_nm * p.gearbox_efficiency / r
        }
    }

    /// The gear that keeps the engine closest to a target shaft speed at
    /// the given wheel speed; `None` when the vehicle is stopped.
    pub fn gear_for_target_ice_speed(
        &self,
        wheel_speed_rad_s: f64,
        target_rad_s: f64,
    ) -> Option<usize> {
        if wheel_speed_rad_s <= 0.0 {
            return None;
        }
        (0..self.num_gears()).min_by(|&a, &b| {
            let da = (self.ice_speed(wheel_speed_rad_s, a) - target_rad_s).abs();
            let db = (self.ice_speed(wheel_speed_rad_s, b) - target_rad_s).abs();
            // total_cmp: a NaN target orders deterministically instead of
            // panicking the comparator.
            da.total_cmp(&db)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dt() -> Drivetrain {
        Drivetrain::new(DrivetrainParams::default()).unwrap()
    }

    #[test]
    fn ratio_validates_gear_index() {
        let d = dt();
        assert!(d.ratio(0).is_ok());
        assert!(matches!(
            d.ratio(7),
            Err(InfeasibleControl::InvalidGear {
                gear: 7,
                num_gears: 5
            })
        ));
    }

    #[test]
    fn speeds_scale_with_ratio() {
        let d = dt();
        let w_wh = 30.0;
        assert!((d.ice_speed(w_wh, 0) - 30.0 * 14.01).abs() < 1e-9);
        assert!((d.em_speed(w_wh, 0) - 30.0 * 14.01 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn forward_and_inverse_torque_agree_for_ice_only() {
        let d = dt();
        for gear in 0..d.num_gears() {
            for t_wh in [-300.0, -50.0, 50.0, 400.0] {
                let shaft = d.required_shaft_torque(t_wh, gear);
                let back = d.wheel_torque(shaft, 0.0, gear);
                assert!((back - t_wh).abs() < 1e-9, "gear {gear} t {t_wh}");
            }
        }
    }

    #[test]
    fn em_contribution_loses_through_reduction_both_ways() {
        let d = dt();
        // Motoring: 10 N·m at the machine arrives as < ρ·10 at the shaft.
        assert!(d.em_shaft_torque(10.0) < 2.0 * 10.0);
        // Generating: extracting 10 N·m at the machine drags > ρ·10.
        assert!(d.em_shaft_torque(-10.0) < -2.0 * 10.0);
    }

    #[test]
    fn propulsion_loses_braking_gains_through_gearbox() {
        let d = dt();
        let forward = d.wheel_torque(10.0, 0.0, 2);
        assert!(forward < 10.0 * 5.20);
        let braking = d.wheel_torque(-10.0, 0.0, 2);
        assert!(braking < -10.0 * 5.20); // more negative: losses work against you
    }

    #[test]
    fn hybrid_torque_superposes() {
        let d = dt();
        let both = d.wheel_torque(20.0, 10.0, 1);
        let ice_only = d.wheel_torque(20.0, 0.0, 1);
        assert!(both > ice_only);
    }

    #[test]
    fn gear_selection_tracks_target_speed() {
        let d = dt();
        // High wheel speed → top gear keeps the engine slowest.
        let g = d.gear_for_target_ice_speed(120.0, 250.0).unwrap();
        assert_eq!(g, 4);
        // Low wheel speed → low gear needed to reach the target.
        let g = d.gear_for_target_ice_speed(15.0, 250.0).unwrap();
        assert_eq!(g, 0);
        assert!(d.gear_for_target_ice_speed(0.0, 250.0).is_none());
    }

    #[test]
    fn rejects_invalid_params() {
        let p = DrivetrainParams {
            gearbox_efficiency: 1.5,
            ..Default::default()
        };
        assert!(Drivetrain::new(p).is_err());
    }
}
