//! Battery pack: Rint equivalent circuit with Coulomb counting.
//!
//! The paper observes the stored charge `q` via Coulomb counting (§4.3.1,
//! refs [17, 18]) because terminal voltage is not a reliable
//! state-of-charge indicator under load. [`Battery::step`] integrates the
//! commanded current exactly as the monitoring IC would.

use crate::error::{InfeasibleControl, ParamError};
use crate::params::BatteryParams;
use serde::{Deserialize, Serialize};

/// Battery pack with mutable state of charge.
///
/// Sign convention (the paper's): current `i > 0` discharges the pack,
/// `i < 0` charges it. Terminal power `P_batt = V_oc·i − R·i²` is the power
/// delivered to the DC bus (negative while charging).
///
/// # Examples
///
/// ```
/// use hev_model::{Battery, BatteryParams};
///
/// let mut battery = Battery::new(BatteryParams::default(), 0.6)?;
/// let p = battery.terminal_power(20.0);
/// assert!(p > 0.0);
/// battery.step(20.0, 1.0)?; // discharge 20 A for 1 s
/// assert!(battery.soc() < 0.6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    params: BatteryParams,
    soc: f64,
    /// Pack temperature, °C; tracked only when the thermal model is
    /// enabled.
    temperature_c: Option<f64>,
}

impl Battery {
    /// Creates a pack at the given initial state of charge.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if the parameters are invalid or the
    /// initial state of charge is outside the charge-sustaining window.
    pub fn new(params: BatteryParams, initial_soc: f64) -> Result<Self, ParamError> {
        params.validate()?;
        if !(params.soc_min..=params.soc_max).contains(&initial_soc) {
            return Err(ParamError::new(
                "initial_soc",
                format!(
                    "{initial_soc} outside charge-sustaining window [{}, {}]",
                    params.soc_min, params.soc_max
                ),
            ));
        }
        let temperature_c = params.thermal.map(|t| t.initial_c);
        Ok(Self {
            params,
            soc: initial_soc,
            temperature_c,
        })
    }

    /// The pack's parameters.
    pub fn params(&self) -> &BatteryParams {
        &self.params
    }

    /// Current state of charge (fraction of capacity), maintained by
    /// Coulomb counting.
    pub fn soc(&self) -> f64 {
        self.soc
    }

    /// Stored charge, coulombs.
    pub fn charge_c(&self) -> f64 {
        self.soc * self.params.capacity_ah * 3600.0
    }

    /// Resets the state of charge (e.g. between training episodes).
    ///
    /// # Panics
    ///
    /// Panics if `soc` is outside `[0, 1]`.
    pub fn reset(&mut self, soc: f64) {
        assert!((0.0..=1.0).contains(&soc), "soc must be in [0, 1]");
        self.soc = soc;
    }

    /// Degrades the pack by scaling its capacity to `(1 − fade)` of the
    /// nominal value — the fault-injection model of calendar/cycle aging.
    /// The state of charge (a fraction) is preserved, so the same current
    /// moves it faster through a faded pack, exactly as Coulomb counting
    /// over a smaller capacity would.
    ///
    /// # Panics
    ///
    /// Panics if `fade` is outside `[0, 1)` (a fully faded pack has no
    /// capacity left to model).
    pub fn apply_capacity_fade(&mut self, fade: f64) {
        assert!((0.0..1.0).contains(&fade), "fade must be in [0, 1)");
        self.params.capacity_ah *= 1.0 - fade;
    }

    /// Open-circuit voltage at the current state of charge, V.
    pub fn ocv(&self) -> f64 {
        self.ocv_at(self.soc)
    }

    /// Open-circuit voltage at a given state of charge, V (affine model).
    pub fn ocv_at(&self, soc: f64) -> f64 {
        self.params.ocv_at_empty_v + self.params.ocv_span_v * soc
    }

    /// Internal resistance for the given current direction, Ω, scaled by
    /// the thermal model's cold penalty when enabled.
    pub fn resistance(&self, current_a: f64) -> f64 {
        let base = if current_a >= 0.0 {
            self.params.resistance_discharge_ohm
        } else {
            self.params.resistance_charge_ohm
        };
        base * self.thermal_resistance_factor()
    }

    /// The multiplicative resistance factor from the thermal model
    /// (1 when disabled or at/above the reference temperature).
    pub fn thermal_resistance_factor(&self) -> f64 {
        match (self.params.thermal, self.temperature_c) {
            (Some(t), Some(temp)) => {
                1.0 + t.cold_resistance_per_k * (t.reference_c - temp).max(0.0)
            }
            _ => 1.0,
        }
    }

    /// Pack temperature, °C; `None` when the thermal model is disabled.
    pub fn temperature_c(&self) -> Option<f64> {
        self.temperature_c
    }

    /// Terminal (bus) power for a commanded current, W:
    /// `P = V_oc·i − R·i²`.
    pub fn terminal_power(&self, current_a: f64) -> f64 {
        self.ocv() * current_a - self.resistance(current_a) * current_a * current_a
    }

    /// Inverse map: the current that realizes terminal power `power_w`
    /// (closed-form quadratic root).
    ///
    /// Returns `None` if the power exceeds the pack's physical maximum
    /// (`V_oc²/4R` while discharging).
    pub fn current_for_power(&self, power_w: f64) -> Option<f64> {
        let v = self.ocv();
        let r = if power_w >= 0.0 {
            self.params.resistance_discharge_ohm
        } else {
            self.params.resistance_charge_ohm
        } * self.thermal_resistance_factor();
        let disc = v * v - 4.0 * r * power_w;
        if disc < 0.0 {
            return None;
        }
        // Small root: the physical branch (current → 0 as power → 0).
        Some((v - disc.sqrt()) / (2.0 * r))
    }

    /// The largest terminal power the pack can deliver, W.
    pub fn max_discharge_power(&self) -> f64 {
        let i = self.params.max_discharge_a;
        let r = self.params.resistance_discharge_ohm * self.thermal_resistance_factor();
        let unconstrained = self.ocv().powi(2) / (4.0 * r);
        self.terminal_power(i).min(unconstrained)
    }

    /// The most negative terminal power the pack can absorb, W.
    pub fn max_charge_power(&self) -> f64 {
        self.terminal_power(-self.params.max_charge_a)
    }

    /// Checks that a commanded current respects the pack's current limits.
    ///
    /// # Errors
    ///
    /// Returns [`InfeasibleControl::BatteryCurrent`] when violated.
    pub fn check_current(&self, current_a: f64) -> Result<(), InfeasibleControl> {
        let (min_a, max_a) = (-self.params.max_charge_a, self.params.max_discharge_a);
        if !(min_a..=max_a).contains(&current_a) || !current_a.is_finite() {
            return Err(InfeasibleControl::BatteryCurrent {
                current_a,
                min_a,
                max_a,
            });
        }
        Ok(())
    }

    /// State of charge after carrying `current_a` for `dt` seconds
    /// (Coulomb counting), without mutating the pack.
    pub fn soc_after(&self, current_a: f64, dt: f64) -> f64 {
        self.soc - current_a * dt / (self.params.capacity_ah * 3600.0)
    }

    /// Whether a state of charge lies inside the charge-sustaining window.
    pub fn in_window(&self, soc: f64) -> bool {
        (self.params.soc_min..=self.params.soc_max).contains(&soc)
    }

    /// Carries `current_a` for `dt` seconds, updating the state of charge.
    ///
    /// # Errors
    ///
    /// Returns [`InfeasibleControl::BatteryCurrent`] if the current
    /// violates the pack limits, or
    /// [`InfeasibleControl::BatteryWindow`] if the step would leave the
    /// charge-sustaining window; the state is unchanged on error.
    pub fn step(&mut self, current_a: f64, dt: f64) -> Result<(), InfeasibleControl> {
        self.check_current(current_a)?;
        let soc_after = self.soc_after(current_a, dt);
        if !self.in_window(soc_after) {
            return Err(InfeasibleControl::BatteryWindow {
                soc_after,
                soc_min: self.params.soc_min,
                soc_max: self.params.soc_max,
            });
        }
        self.soc = soc_after;
        if let (Some(t), Some(temp)) = (self.params.thermal, self.temperature_c) {
            // Lumped thermal step: Joule heat in, Newtonian cooling out.
            let heat_w = self.resistance(current_a) * current_a * current_a;
            let cooling_w = t.cooling_w_per_k * (temp - t.ambient_c);
            self.temperature_c = Some(temp + (heat_w - cooling_w) * dt / t.heat_capacity_j_per_k);
        }
        Ok(())
    }

    /// Resets the pack temperature to the thermal model's initial value
    /// (no-op when the model is disabled).
    pub fn reset_temperature(&mut self) {
        self.temperature_c = self.params.thermal.map(|t| t.initial_c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack() -> Battery {
        Battery::new(BatteryParams::default(), 0.6).unwrap()
    }

    #[test]
    fn rejects_initial_soc_outside_window() {
        assert!(Battery::new(BatteryParams::default(), 0.2).is_err());
        assert!(Battery::new(BatteryParams::default(), 0.9).is_err());
    }

    #[test]
    fn capacity_fade_shrinks_capacity_and_speeds_soc_swing() {
        let mut faded = pack();
        faded.apply_capacity_fade(0.2);
        assert!((faded.params().capacity_ah - 0.8 * pack().params().capacity_ah).abs() < 1e-12);
        assert_eq!(faded.soc(), 0.6);
        // Same discharge current moves SOC further on the faded pack.
        let healthy_drop = pack().soc() - pack().soc_after(20.0, 10.0);
        let faded_drop = faded.soc() - faded.soc_after(20.0, 10.0);
        assert!(faded_drop > healthy_drop);
        assert!((faded_drop - healthy_drop / 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fade must be in [0, 1)")]
    fn capacity_fade_rejects_total_fade() {
        pack().apply_capacity_fade(1.0);
    }

    #[test]
    fn ocv_rises_with_soc() {
        let b = pack();
        assert!(b.ocv_at(0.8) > b.ocv_at(0.4));
        assert!((b.ocv_at(0.6) - 306.0).abs() < 1e-9);
    }

    #[test]
    fn terminal_power_loses_to_resistance() {
        let b = pack();
        let i = 50.0;
        assert!(b.terminal_power(i) < b.ocv() * i);
        // Charging absorbs more than it stores.
        assert!(b.terminal_power(-i).abs() > b.ocv() * i);
    }

    #[test]
    fn current_for_power_roundtrips() {
        let b = pack();
        for &p in &[-15_000.0, -5_000.0, -100.0, 0.0, 100.0, 5_000.0, 20_000.0] {
            let i = b.current_for_power(p).unwrap();
            assert!((b.terminal_power(i) - p).abs() < 1e-6, "p {p}");
        }
    }

    #[test]
    fn current_for_power_none_beyond_physical_max() {
        let b = pack();
        let p_max = b.ocv().powi(2) / (4.0 * b.params().resistance_discharge_ohm);
        assert!(b.current_for_power(p_max * 1.01).is_none());
    }

    #[test]
    fn coulomb_counting_discharge() {
        let mut b = pack();
        // 26 Ah pack: 26 A for 1 hour = full capacity.
        b.step(26.0, 360.0).unwrap(); // 1/10 of an hour
        assert!((b.soc() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn coulomb_counting_charge() {
        let mut b = pack();
        b.step(-26.0, 360.0).unwrap();
        assert!((b.soc() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn step_rejects_over_current() {
        let mut b = pack();
        assert!(matches!(
            b.step(500.0, 1.0),
            Err(InfeasibleControl::BatteryCurrent { .. })
        ));
        assert_eq!(b.soc(), 0.6);
    }

    #[test]
    fn step_rejects_window_exit() {
        let mut b = Battery::new(BatteryParams::default(), 0.4).unwrap();
        let err = b.step(100.0, 3600.0).unwrap_err();
        assert!(matches!(err, InfeasibleControl::BatteryWindow { .. }));
        assert_eq!(b.soc(), 0.4);
    }

    #[test]
    fn power_limits_ordering() {
        let b = pack();
        assert!(b.max_discharge_power() > 0.0);
        assert!(b.max_charge_power() < 0.0);
        assert!(b.max_discharge_power() > b.max_charge_power());
    }

    #[test]
    fn reset_allows_any_physical_soc() {
        let mut b = pack();
        b.reset(0.75);
        assert_eq!(b.soc(), 0.75);
    }

    #[test]
    #[should_panic(expected = "soc must be in [0, 1]")]
    fn reset_panics_outside_physical_range() {
        pack().reset(1.5);
    }

    fn thermal_pack(initial_c: f64) -> Battery {
        let params = BatteryParams {
            thermal: Some(crate::params::BatteryThermalParams {
                initial_c,
                ..Default::default()
            }),
            ..BatteryParams::default()
        };
        Battery::new(params, 0.6).unwrap()
    }

    #[test]
    fn thermal_disabled_by_default() {
        let b = pack();
        assert_eq!(b.temperature_c(), None);
        assert_eq!(b.thermal_resistance_factor(), 1.0);
    }

    #[test]
    fn cold_pack_has_higher_resistance() {
        let cold = thermal_pack(-15.0);
        let warm = thermal_pack(25.0);
        assert!(cold.resistance(50.0) > warm.resistance(50.0));
        // −15 °C is 40 K below reference: factor 1 + 0.02·40 = 1.8.
        assert!((cold.thermal_resistance_factor() - 1.8).abs() < 1e-12);
        // At/above reference there is no penalty.
        assert_eq!(warm.thermal_resistance_factor(), 1.0);
    }

    #[test]
    fn sustained_current_warms_the_pack() {
        let mut b = thermal_pack(0.0);
        let t0 = b.temperature_c().unwrap();
        for _ in 0..60 {
            b.step(50.0, 1.0).unwrap();
        }
        let t1 = b.temperature_c().unwrap();
        assert!(t1 > t0, "pack did not warm: {t0} -> {t1}");
        // Warming reduces the cold penalty.
        assert!(b.thermal_resistance_factor() < 1.5);
    }

    #[test]
    fn idle_pack_relaxes_toward_ambient() {
        let mut b = thermal_pack(50.0);
        for _ in 0..600 {
            b.step(0.0, 10.0).unwrap();
        }
        let t = b.temperature_c().unwrap();
        assert!(
            (t - 25.0).abs() < 2.0,
            "temperature {t} did not relax to ambient"
        );
    }

    #[test]
    fn reset_temperature_restores_initial() {
        let mut b = thermal_pack(-10.0);
        for _ in 0..100 {
            b.step(60.0, 1.0).unwrap();
        }
        b.reset_temperature();
        assert_eq!(b.temperature_c(), Some(-10.0));
    }

    #[test]
    fn charge_c_matches_soc() {
        let b = pack();
        assert!((b.charge_c() - 0.6 * 26.0 * 3600.0).abs() < 1e-6);
    }
}
