//! The batched candidate-evaluation kernel.
//!
//! Controllers sweep many `(current, gear, p_aux)` candidates against one
//! step's demand — feasibility masks, inner-optimization grids, ternary
//! refinements, DP current sweeps. [`CandidateBatch`] holds all the
//! candidates of one sweep in structure-of-arrays form (parallel input
//! arrays of currents, gear indices, and auxiliary powers; parallel
//! output arrays of feasibility verdicts and every [`StepOutcome`]
//! field), and [`ParallelHev::evaluate_batch`] resolves the whole batch
//! in one sweep over a prebuilt [`StepContext`].
//!
//! # The scalar-reference contract
//!
//! [`ParallelHev::peek_with_context`] is the *scalar reference
//! implementation*: every batch lane must be **bit-identical** — every
//! float field, every feasibility verdict, every error variant — to a
//! scalar `peek_with_context` call with the same control at the same
//! vehicle state. The kernel guarantees this by construction: each lane
//! runs the very same completion body (`complete_control`) the scalar
//! path runs, against a [`CurrentContext`] built by the very same pure
//! call; the only differences are *where* the per-current battery
//! precomputation is cached (consecutive lanes commanding bit-equal
//! currents share one context — a pure function of the same inputs, so
//! the shared value is the value each lane would have rebuilt) and *how*
//! evaluations are counted (one per lane in a single batched counter
//! update, instead of one counter hit per scalar call). The differential
//! suite (`tests/batch_differential.rs`) pins the contract with
//! `to_bits()` equality across cycles, randomized states, and perturbed
//! vehicles.
//!
//! # Eval accounting
//!
//! A batch of `n` lanes records exactly `n` peek-equivalent evaluations
//! ([`hev_trace::evals::record_batch`]) — one per lane, never one per
//! call — so `evals/step` remains comparable with scalar-path baselines.
//!
//! # Examples
//!
//! ```
//! use hev_model::{CandidateBatch, HevParams, ParallelHev};
//!
//! let hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
//! let demand = hev.demand(15.0, 0.3, 0.0);
//! let ctx = hev.step_context(&demand);
//! let mut batch = CandidateBatch::default();
//! batch.begin(1.0);
//! for gear in 0..5 {
//!     batch.push(10.0, gear, 600.0);
//! }
//! hev.evaluate_batch(&ctx, &mut batch);
//! let feasible = (0..batch.len()).filter(|&l| batch.is_feasible(l)).count();
//! assert!(feasible > 0);
//! # Ok::<(), hev_model::ParamError>(())
//! ```

use crate::error::InfeasibleControl;
use crate::vehicle::{
    ControlInput, CurrentContext, OperatingMode, ParallelHev, StepContext, StepOutcome,
};

/// A caller-scoped cache of per-current battery precomputations
/// ([`CurrentContext`]), keyed by the commanded current's raw bits.
///
/// A [`CurrentContext`] is a pure function of `(battery state, commanded
/// current, dt)`, so within one battery state it is safe — and
/// bit-identical — to build each distinct current's context once and
/// reuse it across every batch that probes it. Resolvers that evaluate
/// one current through many waves (a coarse grid wave plus a dozen
/// ternary-refinement waves, say) would otherwise rebuild the same
/// context once per wave; with a cache they build it once per resolve,
/// matching the scalar path's cost exactly.
///
/// The cache is valid for **one** `(battery state, dt)` scope: callers
/// must [`clear`](CurrentContextCache::clear) it whenever the battery
/// state (state of charge, capacity, temperature model inputs) or the
/// step length changes — in practice, at the top of each per-step sweep.
/// The demand/`StepContext` does *not* invalidate it: contexts depend
/// only on the battery and the commanded current, so one cache may span
/// several demands evaluated against the same vehicle state.
///
/// Lookup is a linear scan over raw `f64` bits (so NaN currents cache
/// too, and `-0.0` never aliases `+0.0` — the same bit-equality rule the
/// kernel's consecutive-lane reuse applies). Sweeps probe a handful of
/// distinct currents, where a scan beats hashing.
#[derive(Debug, Clone, Default)]
pub struct CurrentContextCache {
    /// Step length the cached contexts were built for (raw bits); only
    /// meaningful while `entries` is non-empty.
    dt_bits: u64,
    entries: Vec<(u64, CurrentContext)>,
}

impl CurrentContextCache {
    /// An empty cache (entries grow on first use and are reused).
    pub fn new() -> Self {
        Self::default()
    }

    /// Invalidates every cached context. Call when the battery state or
    /// the step length changes.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The context for `battery_current_a` at `dt`, built through `hev`
    /// on first request and replayed from the cache afterwards.
    ///
    /// `hev`'s battery state and `dt` must match every earlier call
    /// since the last [`clear`](CurrentContextCache::clear); the `dt`
    /// half is debug-asserted.
    #[inline]
    pub fn get_or_insert(
        &mut self,
        hev: &ParallelHev,
        battery_current_a: f64,
        dt: f64,
    ) -> &CurrentContext {
        debug_assert!(
            self.entries.is_empty() || self.dt_bits == dt.to_bits(),
            "CurrentContextCache reused across dt values without clear()"
        );
        let key = battery_current_a.to_bits();
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            return &self.entries[pos].1;
        }
        self.dt_bits = dt.to_bits();
        let idx = self.entries.len();
        self.entries
            .push((key, hev.current_context(battery_current_a, dt)));
        &self.entries[idx].1
    }
}

/// A structure-of-arrays batch of candidate controls for one step, with
/// per-lane outputs filled by [`ParallelHev::evaluate_batch`].
///
/// Reuse one batch across steps ([`CandidateBatch::begin`] keeps the
/// allocations); controllers hold one in their per-step scratch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CandidateBatch {
    /// Step length every lane is evaluated for, s.
    dt: f64,
    // ---- inputs (parallel arrays, one entry per lane) -------------------
    currents: Vec<f64>,
    gears: Vec<usize>,
    aux_w: Vec<f64>,
    /// Caller-defined lane tag (e.g. the action index a lane probes), so
    /// sweeps that skip candidates can map lanes back without extra
    /// bookkeeping.
    tags: Vec<usize>,
    // ---- outputs (parallel arrays, one entry per lane) ------------------
    /// Feasibility verdict: `None` = feasible, `Some(reason)` = the exact
    /// error the scalar reference returns. Infeasible lanes leave their
    /// numeric outputs zeroed.
    err: Vec<Option<InfeasibleControl>>,
    /// Caller-computed per-lane score, filled only by
    /// [`ParallelHev::evaluate_batch_scored`] (zeroed on infeasible
    /// lanes; empty after a full evaluation).
    score: Vec<f64>,
    mode: Vec<OperatingMode>,
    fuel_rate: Vec<f64>,
    fuel_g: Vec<f64>,
    engine_started: Vec<bool>,
    ice_torque: Vec<f64>,
    ice_speed: Vec<f64>,
    em_torque: Vec<f64>,
    em_speed: Vec<f64>,
    battery_current: Vec<f64>,
    battery_power: Vec<f64>,
    p_aux_out: Vec<f64>,
    aux_utility: Vec<f64>,
    friction: Vec<f64>,
    soc_before: Vec<f64>,
    soc_after: Vec<f64>,
}

impl CandidateBatch {
    /// Starts a new batch for step length `dt`, clearing all lanes but
    /// keeping the allocations.
    pub fn begin(&mut self, dt: f64) {
        self.dt = dt;
        self.currents.clear();
        self.gears.clear();
        self.aux_w.clear();
        self.tags.clear();
        self.clear_outputs();
    }

    fn clear_outputs(&mut self) {
        self.err.clear();
        self.score.clear();
        self.mode.clear();
        self.fuel_rate.clear();
        self.fuel_g.clear();
        self.engine_started.clear();
        self.ice_torque.clear();
        self.ice_speed.clear();
        self.em_torque.clear();
        self.em_speed.clear();
        self.battery_current.clear();
        self.battery_power.clear();
        self.p_aux_out.clear();
        self.aux_utility.clear();
        self.friction.clear();
        self.soc_before.clear();
        self.soc_after.clear();
    }

    /// Appends a candidate lane with tag 0.
    pub fn push(&mut self, battery_current_a: f64, gear: usize, p_aux_w: f64) {
        self.push_tagged(battery_current_a, gear, p_aux_w, 0);
    }

    /// Appends a candidate lane carrying a caller-defined `tag`.
    pub fn push_tagged(&mut self, battery_current_a: f64, gear: usize, p_aux_w: f64, tag: usize) {
        self.currents.push(battery_current_a);
        self.gears.push(gear);
        self.aux_w.push(p_aux_w);
        self.tags.push(tag);
    }

    /// Number of candidate lanes.
    pub fn len(&self) -> usize {
        self.currents.len()
    }

    /// Whether the batch holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.currents.is_empty()
    }

    /// The step length lanes are evaluated for, s.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The control input of one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn control(&self, lane: usize) -> ControlInput {
        ControlInput {
            battery_current_a: self.currents[lane],
            gear: self.gears[lane],
            p_aux_w: self.aux_w[lane],
        }
    }

    /// The caller-defined tag of one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn tag(&self, lane: usize) -> usize {
        self.tags[lane]
    }

    /// Whether a lane resolved feasible. Meaningful only after
    /// [`ParallelHev::evaluate_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn is_feasible(&self, lane: usize) -> bool {
        self.err[lane].is_none()
    }

    /// The infeasibility reason of one lane (`None` when feasible) — the
    /// exact error the scalar reference returns for the same control.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn error(&self, lane: usize) -> Option<InfeasibleControl> {
        self.err[lane]
    }

    /// The caller-computed score of one lane (`None` when the lane
    /// resolved infeasible). Meaningful only after
    /// [`ParallelHev::evaluate_batch_scored`].
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// score-evaluated).
    pub fn score(&self, lane: usize) -> Option<f64> {
        if self.err[lane].is_none() {
            Some(self.score[lane])
        } else {
            None
        }
    }

    /// Fuel consumed by one feasible lane, g (a reward term; zeroed on
    /// infeasible lanes).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn fuel_g(&self, lane: usize) -> f64 {
        self.fuel_g[lane]
    }

    /// Auxiliary utility of one feasible lane (a reward term; zeroed on
    /// infeasible lanes).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn aux_utility(&self, lane: usize) -> f64 {
        self.aux_utility[lane]
    }

    /// State of charge after one feasible lane (a reward term; zeroed on
    /// infeasible lanes).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn soc_after(&self, lane: usize) -> f64 {
        self.soc_after[lane]
    }

    /// Realized battery current of one feasible lane, A (zeroed on
    /// infeasible lanes).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn battery_current_a(&self, lane: usize) -> f64 {
        self.battery_current[lane]
    }

    /// Battery terminal power of one feasible lane, W (a reward term;
    /// zeroed on infeasible lanes).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn battery_power_w(&self, lane: usize) -> f64 {
        self.battery_power[lane]
    }

    /// Reassembles one lane's full result — bit-identical to the scalar
    /// reference's `Result<StepOutcome, InfeasibleControl>` for the same
    /// control.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn outcome(&self, lane: usize) -> Result<StepOutcome, InfeasibleControl> {
        if let Some(err) = self.err[lane] {
            return Err(err);
        }
        Ok(StepOutcome {
            mode: self.mode[lane],
            fuel_rate_g_per_s: self.fuel_rate[lane],
            fuel_g: self.fuel_g[lane],
            engine_started: self.engine_started[lane],
            ice_torque_nm: self.ice_torque[lane],
            ice_speed_rad_s: self.ice_speed[lane],
            em_torque_nm: self.em_torque[lane],
            em_speed_rad_s: self.em_speed[lane],
            battery_current_a: self.battery_current[lane],
            battery_power_w: self.battery_power[lane],
            p_aux_w: self.p_aux_out[lane],
            aux_utility: self.aux_utility[lane],
            friction_brake_torque_nm: self.friction[lane],
            soc_before: self.soc_before[lane],
            soc_after: self.soc_after[lane],
        })
    }

    /// Scatters one resolved lane into the output arrays.
    fn store(&mut self, result: &Result<StepOutcome, InfeasibleControl>) {
        // Infeasible lanes store the zeroed filler so every output array
        // stays lane-aligned; `Stopped` is the mode filler (the verdict
        // array is authoritative).
        const ZERO: StepOutcome = StepOutcome {
            mode: OperatingMode::Stopped,
            fuel_rate_g_per_s: 0.0,
            fuel_g: 0.0,
            engine_started: false,
            ice_torque_nm: 0.0,
            ice_speed_rad_s: 0.0,
            em_torque_nm: 0.0,
            em_speed_rad_s: 0.0,
            battery_current_a: 0.0,
            battery_power_w: 0.0,
            p_aux_w: 0.0,
            aux_utility: 0.0,
            friction_brake_torque_nm: 0.0,
            soc_before: 0.0,
            soc_after: 0.0,
        };
        let (err, o) = match result {
            Ok(o) => (None, o),
            Err(e) => (Some(*e), &ZERO),
        };
        self.err.push(err);
        self.mode.push(o.mode);
        self.fuel_rate.push(o.fuel_rate_g_per_s);
        self.fuel_g.push(o.fuel_g);
        self.engine_started.push(o.engine_started);
        self.ice_torque.push(o.ice_torque_nm);
        self.ice_speed.push(o.ice_speed_rad_s);
        self.em_torque.push(o.em_torque_nm);
        self.em_speed.push(o.em_speed_rad_s);
        self.battery_current.push(o.battery_current_a);
        self.battery_power.push(o.battery_power_w);
        self.p_aux_out.push(o.p_aux_w);
        self.aux_utility.push(o.aux_utility);
        self.friction.push(o.friction_brake_torque_nm);
        self.soc_before.push(o.soc_before);
        self.soc_after.push(o.soc_after);
    }
}

impl ParallelHev {
    /// Resolves every lane of `batch` against the prebuilt context in one
    /// sweep, filling the batch's output arrays.
    ///
    /// Per-lane results are bit-identical to the scalar reference
    /// ([`ParallelHev::peek_with_context`]) with the same control at the
    /// batch's `dt` — see the module docs for the contract. Consecutive
    /// lanes commanding bit-equal currents share one [`CurrentContext`]
    /// build (callers get the most from the kernel by grouping lanes by
    /// current), and the whole batch records exactly `len()`
    /// peek-equivalent evaluations in one counter update.
    ///
    /// `ctx` must have been built (or rebuilt) by this vehicle for the
    /// demand being evaluated, exactly as for
    /// [`ParallelHev::peek_with_context`].
    ///
    /// [`CurrentContext`]: crate::vehicle::CurrentContext
    pub fn evaluate_batch(&self, ctx: &StepContext, batch: &mut CandidateBatch) {
        batch.clear_outputs();
        let n = batch.len();
        if n == 0 {
            return;
        }
        crate::instrument::record_batch(n as u64);
        let mut cur = self.current_context(batch.currents[0], batch.dt);
        for lane in 0..n {
            let battery_current_a = batch.currents[lane];
            // Bit-equality (not ==) so NaN commands also reuse and a
            // negative zero never aliases a positive one.
            if battery_current_a.to_bits() != cur.battery_current_a().to_bits() {
                cur = self.current_context(battery_current_a, batch.dt);
            }
            let control = ControlInput {
                battery_current_a,
                gear: batch.gears[lane],
                p_aux_w: batch.aux_w[lane],
            };
            let result = self.complete_control(ctx, &cur, &control);
            batch.store(&result);
        }
    }

    /// [`ParallelHev::evaluate_batch`] resolving each lane's
    /// [`CurrentContext`] through a caller-scoped
    /// [`CurrentContextCache`] instead of rebuilding on every change of
    /// lane current.
    ///
    /// Bit-identical to [`ParallelHev::evaluate_batch`] (a cached
    /// context is the same pure value a rebuild would produce) and
    /// records the same `len()` lane evaluations. Use it when one sweep
    /// issues *many* batch calls over *few* distinct currents — e.g. the
    /// inner optimizer's wave-per-iteration resolve, where every wave
    /// commands the same current: the cache makes the whole resolve
    /// build one context, where the uncached kernel would build one per
    /// wave.
    ///
    /// The cache must be scoped to this vehicle's current battery state
    /// and this batch's `dt` — see [`CurrentContextCache`].
    pub fn evaluate_batch_cached(
        &self,
        ctx: &StepContext,
        batch: &mut CandidateBatch,
        cache: &mut CurrentContextCache,
    ) {
        batch.clear_outputs();
        let n = batch.len();
        if n == 0 {
            return;
        }
        crate::instrument::record_batch(n as u64);
        for lane in 0..n {
            let battery_current_a = batch.currents[lane];
            let cur = cache.get_or_insert(self, battery_current_a, batch.dt);
            let control = ControlInput {
                battery_current_a,
                gear: batch.gears[lane],
                p_aux_w: batch.aux_w[lane],
            };
            let result = self.complete_control(ctx, cur, &control);
            batch.store(&result);
        }
    }

    /// The lean sweep kernel: evaluates every lane but stores only its
    /// feasibility verdict and a caller-computed `score` — no outcome
    /// fields are materialized.
    ///
    /// Argmax sweeps (the inner optimization, feasibility masks) consume
    /// only a score — or nothing at all — per losing candidate; storing
    /// the full sixteen-array outcome per lane costs more than the
    /// physics. Because `score` is monomorphized into the lane loop and
    /// the completion is `#[inline(always)]`, the parts of the outcome
    /// the score never reads are dead-code-eliminated — the same
    /// optimization the scalar sweep (`evaluate_reward`) gets. Winners
    /// are re-materialized once via
    /// [`ParallelHev::replay_candidate`].
    ///
    /// Per-lane verdicts and scores are bit-identical to scoring the
    /// scalar reference's outcome: each lane runs the same completion on
    /// the same cached pure context, and `score` sees the same outcome
    /// bits. Records `len()` lane evaluations, exactly like
    /// [`ParallelHev::evaluate_batch`]. After a scored evaluation only
    /// [`CandidateBatch::score`], [`CandidateBatch::is_feasible`], and
    /// [`CandidateBatch::error`] are meaningful — outcome accessors
    /// would index empty arrays.
    pub fn evaluate_batch_scored<F>(
        &self,
        ctx: &StepContext,
        batch: &mut CandidateBatch,
        cache: &mut CurrentContextCache,
        score: F,
    ) where
        F: Fn(&StepOutcome) -> f64,
    {
        batch.clear_outputs();
        let n = batch.len();
        if n == 0 {
            return;
        }
        crate::instrument::record_batch(n as u64);
        for lane in 0..n {
            let battery_current_a = batch.currents[lane];
            let cur = cache.get_or_insert(self, battery_current_a, batch.dt);
            let control = ControlInput {
                battery_current_a,
                gear: batch.gears[lane],
                p_aux_w: batch.aux_w[lane],
            };
            match self.complete_control(ctx, cur, &control) {
                Ok(o) => {
                    batch.err.push(None);
                    batch.score.push(score(&o));
                }
                Err(e) => {
                    batch.err.push(Some(e));
                    batch.score.push(0.0);
                }
            }
        }
    }

    /// Re-materializes the full outcome of a candidate an earlier scored
    /// batch already evaluated — the argmax winner — through the same
    /// cached context its lane used.
    ///
    /// A pure replay: the completion is a deterministic function of
    /// `(ctx, cached context, control)`, so the returned bits are the
    /// bits the lane's score was computed from. Because the lane was
    /// already counted by its batch, a replay records **no** additional
    /// evaluation.
    pub fn replay_candidate(
        &self,
        ctx: &StepContext,
        cache: &mut CurrentContextCache,
        control: &ControlInput,
        dt: f64,
    ) -> Result<StepOutcome, InfeasibleControl> {
        let cur = cache.get_or_insert(self, control.battery_current_a, dt);
        self.complete_control(ctx, cur, control)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HevParams;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    fn outcome_bits(o: &StepOutcome) -> [u64; 13] {
        [
            o.fuel_rate_g_per_s.to_bits(),
            o.fuel_g.to_bits(),
            o.ice_torque_nm.to_bits(),
            o.ice_speed_rad_s.to_bits(),
            o.em_torque_nm.to_bits(),
            o.em_speed_rad_s.to_bits(),
            o.battery_current_a.to_bits(),
            o.battery_power_w.to_bits(),
            o.p_aux_w.to_bits(),
            o.aux_utility.to_bits(),
            o.friction_brake_torque_nm.to_bits(),
            o.soc_before.to_bits(),
            o.soc_after.to_bits(),
        ]
    }

    #[test]
    fn batch_lane_matches_scalar_reference_bit_for_bit() {
        let hev = hev();
        for (v, a) in [(0.0, 0.0), (3.0, 0.4), (20.0, 0.3), (15.0, -1.5)] {
            let d = hev.demand(v, a, 0.0);
            let ctx = hev.step_context(&d);
            let mut batch = CandidateBatch::default();
            batch.begin(1.0);
            for &i in &[-25.0, 0.0, 10.0, 100.0, 1e6] {
                for gear in 0..6 {
                    // gear 5 is invalid: error lanes are part of the contract
                    batch.push(i, gear, 600.0);
                }
            }
            hev.evaluate_batch(&ctx, &mut batch);
            for lane in 0..batch.len() {
                let control = batch.control(lane);
                let scalar = hev.peek_with_context(&ctx, &control, 1.0);
                match (batch.outcome(lane), scalar) {
                    (Ok(b), Ok(s)) => {
                        assert_eq!(outcome_bits(&b), outcome_bits(&s), "lane {lane} v={v}");
                        assert_eq!(b.mode, s.mode);
                        assert_eq!(b.engine_started, s.engine_started);
                    }
                    (Err(b), Err(s)) => assert_eq!(b, s, "lane {lane} v={v}"),
                    (b, s) => panic!("verdict mismatch at lane {lane}: {b:?} vs {s:?}"),
                }
            }
        }
    }

    #[test]
    fn cached_kernel_matches_uncached_bit_for_bit() {
        let hev = hev();
        // One cache spans every demand: contexts depend only on the
        // battery state and dt, neither of which a peek mutates.
        let mut cache = CurrentContextCache::new();
        for (v, a) in [(0.0, 0.0), (3.0, 0.4), (20.0, 0.3), (15.0, -1.5)] {
            let d = hev.demand(v, a, 0.0);
            let ctx = hev.step_context(&d);
            let mut plain = CandidateBatch::default();
            let mut cached = CandidateBatch::default();
            for b in [&mut plain, &mut cached] {
                b.begin(1.0);
                // Interleave currents so the uncached kernel's
                // consecutive-lane reuse never fires but the cache hits.
                for gear in 0..6 {
                    for &i in &[-25.0, 0.0, 10.0, 100.0, 1e6] {
                        b.push(i, gear, 600.0);
                    }
                }
            }
            hev.evaluate_batch(&ctx, &mut plain);
            hev.evaluate_batch_cached(&ctx, &mut cached, &mut cache);
            for lane in 0..plain.len() {
                match (plain.outcome(lane), cached.outcome(lane)) {
                    (Ok(p), Ok(c)) => {
                        assert_eq!(outcome_bits(&p), outcome_bits(&c), "lane {lane} v={v}");
                        assert_eq!(p.mode, c.mode);
                        assert_eq!(p.engine_started, c.engine_started);
                    }
                    (Err(p), Err(c)) => assert_eq!(p, c, "lane {lane} v={v}"),
                    (p, c) => panic!("verdict mismatch at lane {lane}: {p:?} vs {c:?}"),
                }
            }
        }
    }

    #[test]
    fn cached_kernel_counts_one_eval_per_lane() {
        let hev = hev();
        let d = hev.demand(15.0, 0.2, 0.0);
        let ctx = hev.step_context(&d);
        let mut batch = CandidateBatch::default();
        let mut cache = CurrentContextCache::new();
        batch.begin(1.0);
        for gear in 0..5 {
            batch.push(8.0, gear, 600.0);
        }
        let snap = hev_trace::evals::count();
        let calls = hev_trace::evals::batch_calls();
        hev.evaluate_batch_cached(&ctx, &mut batch, &mut cache);
        assert_eq!(hev_trace::evals::since(snap), 5);
        assert_eq!(hev_trace::evals::batch_calls() - calls, 1);
        // A cached empty batch is the same no-op as the uncached one.
        batch.begin(1.0);
        let snap = hev_trace::evals::count();
        hev.evaluate_batch_cached(&ctx, &mut batch, &mut cache);
        assert_eq!(hev_trace::evals::since(snap), 0);
    }

    #[test]
    fn batch_counts_one_eval_per_lane() {
        let hev = hev();
        let d = hev.demand(15.0, 0.2, 0.0);
        let ctx = hev.step_context(&d);
        let mut batch = CandidateBatch::default();
        batch.begin(1.0);
        for gear in 0..5 {
            batch.push(8.0, gear, 600.0);
        }
        let snap = hev_trace::evals::count();
        let calls = hev_trace::evals::batch_calls();
        hev.evaluate_batch(&ctx, &mut batch);
        assert_eq!(hev_trace::evals::since(snap), 5);
        assert_eq!(hev_trace::evals::batch_calls() - calls, 1);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let hev = hev();
        let d = hev.demand(10.0, 0.0, 0.0);
        let ctx = hev.step_context(&d);
        let mut batch = CandidateBatch::default();
        batch.begin(1.0);
        let snap = hev_trace::evals::count();
        hev.evaluate_batch(&ctx, &mut batch);
        assert_eq!(batch.len(), 0);
        assert_eq!(hev_trace::evals::since(snap), 0);
    }

    #[test]
    fn begin_reuses_allocations_and_resets_lanes() {
        let hev = hev();
        let d = hev.demand(10.0, 0.0, 0.0);
        let ctx = hev.step_context(&d);
        let mut batch = CandidateBatch::default();
        batch.begin(1.0);
        batch.push_tagged(4.0, 1, 600.0, 7);
        hev.evaluate_batch(&ctx, &mut batch);
        assert_eq!(batch.tag(0), 7);
        batch.begin(0.5);
        assert!(batch.is_empty());
        assert_eq!(batch.dt(), 0.5);
    }
}
