//! The batched candidate-evaluation kernel.
//!
//! Controllers sweep many `(current, gear, p_aux)` candidates against one
//! step's demand — feasibility masks, inner-optimization grids, ternary
//! refinements, DP current sweeps. [`CandidateBatch`] holds all the
//! candidates of one sweep in structure-of-arrays form (parallel input
//! arrays of currents, gear indices, and auxiliary powers; parallel
//! output arrays of feasibility verdicts and every [`StepOutcome`]
//! field), and [`ParallelHev::evaluate_batch`] resolves the whole batch
//! in one sweep over a prebuilt [`StepContext`].
//!
//! # The scalar-reference contract
//!
//! [`ParallelHev::peek_with_context`] is the *scalar reference
//! implementation*: every batch lane must be **bit-identical** — every
//! float field, every feasibility verdict, every error variant — to a
//! scalar `peek_with_context` call with the same control at the same
//! vehicle state. The kernel guarantees this by construction: each lane
//! runs the very same completion body (`complete_control`) the scalar
//! path runs, against a [`CurrentContext`] built by the very same pure
//! call; the only differences are *where* the per-current battery
//! precomputation is cached (consecutive lanes commanding bit-equal
//! currents share one context — a pure function of the same inputs, so
//! the shared value is the value each lane would have rebuilt) and *how*
//! evaluations are counted (one per lane in a single batched counter
//! update, instead of one counter hit per scalar call). The differential
//! suite (`tests/batch_differential.rs`) pins the contract with
//! `to_bits()` equality across cycles, randomized states, and perturbed
//! vehicles.
//!
//! # Eval accounting
//!
//! A batch of `n` lanes records exactly `n` peek-equivalent evaluations
//! ([`hev_trace::evals::record_batch`]) — one per lane, never one per
//! call — so `evals/step` remains comparable with scalar-path baselines.
//!
//! # Examples
//!
//! ```
//! use hev_model::{CandidateBatch, HevParams, ParallelHev};
//!
//! let hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
//! let demand = hev.demand(15.0, 0.3, 0.0);
//! let ctx = hev.step_context(&demand);
//! let mut batch = CandidateBatch::default();
//! batch.begin(1.0);
//! for gear in 0..5 {
//!     batch.push(10.0, gear, 600.0);
//! }
//! hev.evaluate_batch(&ctx, &mut batch);
//! let feasible = (0..batch.len()).filter(|&l| batch.is_feasible(l)).count();
//! assert!(feasible > 0);
//! # Ok::<(), hev_model::ParamError>(())
//! ```

use crate::error::InfeasibleControl;
use crate::vehicle::{
    ControlInput, CurrentContext, OperatingMode, ParallelHev, StepContext, StepOutcome,
};

/// A caller-scoped cache of per-current battery precomputations
/// ([`CurrentContext`]), keyed by the commanded current's raw bits.
///
/// A [`CurrentContext`] is a pure function of `(battery state, commanded
/// current, dt)`, so within one battery state it is safe — and
/// bit-identical — to build each distinct current's context once and
/// reuse it across every batch that probes it. Resolvers that evaluate
/// one current through many waves (a coarse grid wave plus a dozen
/// ternary-refinement waves, say) would otherwise rebuild the same
/// context once per wave; with a cache they build it once per resolve,
/// matching the scalar path's cost exactly.
///
/// The cache is valid for **one** `(battery state, dt)` scope: callers
/// must [`clear`](CurrentContextCache::clear) it whenever the battery
/// state (state of charge, capacity, temperature model inputs) or the
/// step length changes — in practice, at the top of each per-step sweep.
/// The demand/`StepContext` does *not* invalidate it: contexts depend
/// only on the battery and the commanded current, so one cache may span
/// several demands evaluated against the same vehicle state.
///
/// Lookup is **direct-mapped** over raw `f64` bits (so NaN currents
/// cache too, and `-0.0` never aliases `+0.0` — the same bit-equality
/// rule the kernel's consecutive-lane reuse applies): the key's
/// Fibonacci hash picks one of [`CACHE_SLOTS`] fixed slots, a hit is a
/// single compare, and a conflicting current simply evicts the slot. An
/// eviction is bit-safe — the context is a pure function of its inputs,
/// so recomputing it later yields the very same bits — it only costs
/// one rebuild. [`clear`](CurrentContextCache::clear) is O(1): slots
/// carry a generation stamp and clearing bumps the generation.
///
/// Cache efficacy is observable: every lookup records a hit or a miss
/// in the thread-local [`hev_trace::evals`] counters
/// (`ctx_cache_hits` / `ctx_cache_misses`), which the telemetry layer
/// exports through its metrics registry.
#[derive(Debug, Clone)]
pub struct CurrentContextCache {
    /// Current generation; a slot is live only while its stamp matches.
    generation: u64,
    /// Lazily allocated to [`CACHE_SLOTS`] entries on first insert.
    slots: Vec<CacheSlot>,
}

/// Fixed slot count of the direct-mapped cache: sweeps probe at most a
/// few dozen distinct currents (the action grid plus ternary-refinement
/// probes), so 64 slots keep conflict evictions rare.
pub const CACHE_SLOTS: usize = 64;

/// Fibonacci-hash multiplier (2^64 / φ), spreading raw current bits
/// uniformly over the slot index's top bits.
const FIB_HASH: u64 = 0x9E37_79B9_7F4A_7C15;

#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    /// Generation the slot was filled in; live iff equal to the cache's.
    stamp: u64,
    /// Raw bits of the commanded current.
    key: u64,
    /// Raw bits of the step length the context was built for.
    dt_bits: u64,
    ctx: CurrentContext,
}

impl Default for CurrentContextCache {
    fn default() -> Self {
        Self {
            // Slots start stamped 0, so the first live generation is 1.
            generation: 1,
            slots: Vec::new(),
        }
    }
}

impl CurrentContextCache {
    /// An empty cache (slots allocate on first use and are reused).
    pub fn new() -> Self {
        Self::default()
    }

    /// Invalidates every cached context in O(1) by advancing the
    /// generation. Call when the battery state or the step length
    /// changes.
    pub fn clear(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // 2^64 clears later the stamp space recycles; drop the slots
            // so no stale stamp can match the reused generation.
            self.slots.clear();
            self.generation = 1;
        }
    }

    /// The slot index of a raw-bits key.
    #[inline]
    fn slot_of(key: u64) -> usize {
        debug_assert!(CACHE_SLOTS.is_power_of_two());
        // The shift keeps log2(CACHE_SLOTS) bits, so the cast is bounded.
        (key.wrapping_mul(FIB_HASH) >> (64 - CACHE_SLOTS.trailing_zeros())) as usize
    }

    /// The context for `battery_current_a` at `dt`, built through `hev`
    /// on a miss (or a conflict eviction) and replayed from its slot on
    /// a hit.
    ///
    /// `hev`'s battery state and `dt` must match every earlier call
    /// since the last [`clear`](CurrentContextCache::clear); the `dt`
    /// half is debug-asserted on hits.
    #[inline]
    pub fn get_or_insert(
        &mut self,
        hev: &ParallelHev,
        battery_current_a: f64,
        dt: f64,
    ) -> &CurrentContext {
        let key = battery_current_a.to_bits();
        let idx = Self::slot_of(key);
        let hit = self
            .slots
            .get(idx)
            .is_some_and(|s| s.stamp == self.generation && s.key == key);
        if hit {
            debug_assert_eq!(
                self.slots[idx].dt_bits,
                dt.to_bits(),
                "CurrentContextCache reused across dt values without clear()"
            );
            crate::instrument::record_ctx_cache_hit();
            return &self.slots[idx].ctx;
        }
        crate::instrument::record_ctx_cache_miss();
        let slot = CacheSlot {
            stamp: self.generation,
            key,
            dt_bits: dt.to_bits(),
            ctx: hev.current_context(battery_current_a, dt),
        };
        if self.slots.is_empty() {
            // First insert: allocate every slot dead (stamp 0 never
            // matches a live generation).
            self.slots = vec![CacheSlot { stamp: 0, ..slot }; CACHE_SLOTS];
        }
        self.slots[idx] = slot;
        &self.slots[idx].ctx
    }
}

/// A structure-of-arrays batch of candidate controls for one step, with
/// per-lane outputs filled by [`ParallelHev::evaluate_batch`].
///
/// Reuse one batch across steps ([`CandidateBatch::begin`] keeps the
/// allocations); controllers hold one in their per-step scratch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CandidateBatch {
    /// Step length every lane is evaluated for, s.
    dt: f64,
    // ---- inputs (parallel arrays, one entry per lane) -------------------
    currents: Vec<f64>,
    gears: Vec<usize>,
    aux_w: Vec<f64>,
    /// Caller-defined lane tag (e.g. the action index a lane probes), so
    /// sweeps that skip candidates can map lanes back without extra
    /// bookkeeping.
    tags: Vec<usize>,
    // ---- outputs (parallel arrays, one entry per lane) ------------------
    /// Feasibility verdict: `None` = feasible, `Some(reason)` = the exact
    /// error the scalar reference returns. Infeasible lanes leave their
    /// numeric outputs zeroed.
    err: Vec<Option<InfeasibleControl>>,
    /// Caller-computed per-lane score, filled only by
    /// [`ParallelHev::evaluate_batch_scored`] (zeroed on infeasible
    /// lanes; empty after a full evaluation).
    score: Vec<f64>,
    mode: Vec<OperatingMode>,
    fuel_rate: Vec<f64>,
    fuel_g: Vec<f64>,
    engine_started: Vec<bool>,
    ice_torque: Vec<f64>,
    ice_speed: Vec<f64>,
    em_torque: Vec<f64>,
    em_speed: Vec<f64>,
    battery_current: Vec<f64>,
    battery_power: Vec<f64>,
    p_aux_out: Vec<f64>,
    aux_utility: Vec<f64>,
    friction: Vec<f64>,
    soc_before: Vec<f64>,
    soc_after: Vec<f64>,
}

impl CandidateBatch {
    /// Starts a new batch for step length `dt`, clearing all lanes but
    /// keeping the allocations.
    pub fn begin(&mut self, dt: f64) {
        self.dt = dt;
        self.currents.clear();
        self.gears.clear();
        self.aux_w.clear();
        self.tags.clear();
        self.clear_outputs();
    }

    fn clear_outputs(&mut self) {
        self.err.clear();
        self.score.clear();
        self.mode.clear();
        self.fuel_rate.clear();
        self.fuel_g.clear();
        self.engine_started.clear();
        self.ice_torque.clear();
        self.ice_speed.clear();
        self.em_torque.clear();
        self.em_speed.clear();
        self.battery_current.clear();
        self.battery_power.clear();
        self.p_aux_out.clear();
        self.aux_utility.clear();
        self.friction.clear();
        self.soc_before.clear();
        self.soc_after.clear();
    }

    /// Prepares the verdict and score arrays for an index-addressed
    /// scored evaluation over the current lanes: every other output
    /// array is cleared, and `err`/`score` are sized to
    /// [`len`](CandidateBatch::len) with the infeasible-lane fillers
    /// (`None` / `0.0`).
    ///
    /// [`ParallelHev::evaluate_batch_scored`] calls this itself; fused
    /// multi-sweep callers call it once before scoring disjoint lane
    /// ranges with [`ParallelHev::evaluate_scored_range`].
    pub fn reset_scores(&mut self) {
        self.clear_outputs();
        self.err.resize(self.currents.len(), None);
        self.score.resize(self.currents.len(), 0.0);
    }

    /// Appends a candidate lane with tag 0.
    pub fn push(&mut self, battery_current_a: f64, gear: usize, p_aux_w: f64) {
        self.push_tagged(battery_current_a, gear, p_aux_w, 0);
    }

    /// Appends a candidate lane carrying a caller-defined `tag`.
    pub fn push_tagged(&mut self, battery_current_a: f64, gear: usize, p_aux_w: f64, tag: usize) {
        self.currents.push(battery_current_a);
        self.gears.push(gear);
        self.aux_w.push(p_aux_w);
        self.tags.push(tag);
    }

    /// Number of candidate lanes.
    pub fn len(&self) -> usize {
        self.currents.len()
    }

    /// Whether the batch holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.currents.is_empty()
    }

    /// The step length lanes are evaluated for, s.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The control input of one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn control(&self, lane: usize) -> ControlInput {
        ControlInput {
            battery_current_a: self.currents[lane],
            gear: self.gears[lane],
            p_aux_w: self.aux_w[lane],
        }
    }

    /// The caller-defined tag of one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn tag(&self, lane: usize) -> usize {
        self.tags[lane]
    }

    /// Whether a lane resolved feasible. Meaningful only after
    /// [`ParallelHev::evaluate_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn is_feasible(&self, lane: usize) -> bool {
        self.err[lane].is_none()
    }

    /// The infeasibility reason of one lane (`None` when feasible) — the
    /// exact error the scalar reference returns for the same control.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn error(&self, lane: usize) -> Option<InfeasibleControl> {
        self.err[lane]
    }

    /// The caller-computed score of one lane (`None` when the lane
    /// resolved infeasible). Meaningful only after
    /// [`ParallelHev::evaluate_batch_scored`].
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// score-evaluated).
    pub fn score(&self, lane: usize) -> Option<f64> {
        if self.err[lane].is_none() {
            Some(self.score[lane])
        } else {
            None
        }
    }

    /// Fuel consumed by one feasible lane, g (a reward term; zeroed on
    /// infeasible lanes).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn fuel_g(&self, lane: usize) -> f64 {
        self.fuel_g[lane]
    }

    /// Auxiliary utility of one feasible lane (a reward term; zeroed on
    /// infeasible lanes).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn aux_utility(&self, lane: usize) -> f64 {
        self.aux_utility[lane]
    }

    /// State of charge after one feasible lane (a reward term; zeroed on
    /// infeasible lanes).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn soc_after(&self, lane: usize) -> f64 {
        self.soc_after[lane]
    }

    /// Realized battery current of one feasible lane, A (zeroed on
    /// infeasible lanes).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn battery_current_a(&self, lane: usize) -> f64 {
        self.battery_current[lane]
    }

    /// Battery terminal power of one feasible lane, W (a reward term;
    /// zeroed on infeasible lanes).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn battery_power_w(&self, lane: usize) -> f64 {
        self.battery_power[lane]
    }

    /// Reassembles one lane's full result — bit-identical to the scalar
    /// reference's `Result<StepOutcome, InfeasibleControl>` for the same
    /// control.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (or the batch was never
    /// evaluated).
    pub fn outcome(&self, lane: usize) -> Result<StepOutcome, InfeasibleControl> {
        if let Some(err) = self.err[lane] {
            return Err(err);
        }
        Ok(StepOutcome {
            mode: self.mode[lane],
            fuel_rate_g_per_s: self.fuel_rate[lane],
            fuel_g: self.fuel_g[lane],
            engine_started: self.engine_started[lane],
            ice_torque_nm: self.ice_torque[lane],
            ice_speed_rad_s: self.ice_speed[lane],
            em_torque_nm: self.em_torque[lane],
            em_speed_rad_s: self.em_speed[lane],
            battery_current_a: self.battery_current[lane],
            battery_power_w: self.battery_power[lane],
            p_aux_w: self.p_aux_out[lane],
            aux_utility: self.aux_utility[lane],
            friction_brake_torque_nm: self.friction[lane],
            soc_before: self.soc_before[lane],
            soc_after: self.soc_after[lane],
        })
    }

    /// Scatters one resolved lane into the output arrays.
    fn store(&mut self, result: &Result<StepOutcome, InfeasibleControl>) {
        // Infeasible lanes store the zeroed filler so every output array
        // stays lane-aligned; `Stopped` is the mode filler (the verdict
        // array is authoritative).
        const ZERO: StepOutcome = StepOutcome {
            mode: OperatingMode::Stopped,
            fuel_rate_g_per_s: 0.0,
            fuel_g: 0.0,
            engine_started: false,
            ice_torque_nm: 0.0,
            ice_speed_rad_s: 0.0,
            em_torque_nm: 0.0,
            em_speed_rad_s: 0.0,
            battery_current_a: 0.0,
            battery_power_w: 0.0,
            p_aux_w: 0.0,
            aux_utility: 0.0,
            friction_brake_torque_nm: 0.0,
            soc_before: 0.0,
            soc_after: 0.0,
        };
        let (err, o) = match result {
            Ok(o) => (None, o),
            Err(e) => (Some(*e), &ZERO),
        };
        self.err.push(err);
        self.mode.push(o.mode);
        self.fuel_rate.push(o.fuel_rate_g_per_s);
        self.fuel_g.push(o.fuel_g);
        self.engine_started.push(o.engine_started);
        self.ice_torque.push(o.ice_torque_nm);
        self.ice_speed.push(o.ice_speed_rad_s);
        self.em_torque.push(o.em_torque_nm);
        self.em_speed.push(o.em_speed_rad_s);
        self.battery_current.push(o.battery_current_a);
        self.battery_power.push(o.battery_power_w);
        self.p_aux_out.push(o.p_aux_w);
        self.aux_utility.push(o.aux_utility);
        self.friction.push(o.friction_brake_torque_nm);
        self.soc_before.push(o.soc_before);
        self.soc_after.push(o.soc_after);
    }
}

impl ParallelHev {
    /// Resolves every lane of `batch` against the prebuilt context in one
    /// sweep, filling the batch's output arrays.
    ///
    /// Per-lane results are bit-identical to the scalar reference
    /// ([`ParallelHev::peek_with_context`]) with the same control at the
    /// batch's `dt` — see the module docs for the contract. Consecutive
    /// lanes commanding bit-equal currents share one [`CurrentContext`]
    /// build (callers get the most from the kernel by grouping lanes by
    /// current), and the whole batch records exactly `len()`
    /// peek-equivalent evaluations in one counter update.
    ///
    /// `ctx` must have been built (or rebuilt) by this vehicle for the
    /// demand being evaluated, exactly as for
    /// [`ParallelHev::peek_with_context`].
    ///
    /// [`CurrentContext`]: crate::vehicle::CurrentContext
    pub fn evaluate_batch(&self, ctx: &StepContext, batch: &mut CandidateBatch) {
        batch.clear_outputs();
        let n = batch.len();
        if n == 0 {
            return;
        }
        let _span = hev_trace::span::enter("model.batch_fill");
        crate::instrument::record_batch(n as u64);
        let mut cur = self.current_context(batch.currents[0], batch.dt);
        for lane in 0..n {
            let battery_current_a = batch.currents[lane];
            // Bit-equality (not ==) so NaN commands also reuse and a
            // negative zero never aliases a positive one.
            if battery_current_a.to_bits() != cur.battery_current_a().to_bits() {
                cur = self.current_context(battery_current_a, batch.dt);
            }
            let control = ControlInput {
                battery_current_a,
                gear: batch.gears[lane],
                p_aux_w: batch.aux_w[lane],
            };
            let result = self.complete_control(ctx, &cur, &control);
            batch.store(&result);
        }
    }

    /// [`ParallelHev::evaluate_batch`] resolving each lane's
    /// [`CurrentContext`] through a caller-scoped
    /// [`CurrentContextCache`] instead of rebuilding on every change of
    /// lane current.
    ///
    /// Bit-identical to [`ParallelHev::evaluate_batch`] (a cached
    /// context is the same pure value a rebuild would produce) and
    /// records the same `len()` lane evaluations. Use it when one sweep
    /// issues *many* batch calls over *few* distinct currents — e.g. the
    /// inner optimizer's wave-per-iteration resolve, where every wave
    /// commands the same current: the cache makes the whole resolve
    /// build one context, where the uncached kernel would build one per
    /// wave.
    ///
    /// The cache must be scoped to this vehicle's current battery state
    /// and this batch's `dt` — see [`CurrentContextCache`].
    pub fn evaluate_batch_cached(
        &self,
        ctx: &StepContext,
        batch: &mut CandidateBatch,
        cache: &mut CurrentContextCache,
    ) {
        batch.clear_outputs();
        let n = batch.len();
        if n == 0 {
            return;
        }
        let _span = hev_trace::span::enter("model.batch_fill");
        crate::instrument::record_batch(n as u64);
        for lane in 0..n {
            let battery_current_a = batch.currents[lane];
            let cur = cache.get_or_insert(self, battery_current_a, batch.dt);
            let control = ControlInput {
                battery_current_a,
                gear: batch.gears[lane],
                p_aux_w: batch.aux_w[lane],
            };
            let result = self.complete_control(ctx, cur, &control);
            batch.store(&result);
        }
    }

    /// The lean sweep kernel: evaluates every lane but stores only its
    /// feasibility verdict and a caller-computed `score` — no outcome
    /// fields are materialized.
    ///
    /// Argmax sweeps (the inner optimization, feasibility masks) consume
    /// only a score — or nothing at all — per losing candidate; storing
    /// the full sixteen-array outcome per lane costs more than the
    /// physics. Because `score` is monomorphized into the lane loop and
    /// the completion is `#[inline(always)]`, the parts of the outcome
    /// the score never reads are dead-code-eliminated — the same
    /// optimization the scalar sweep (`evaluate_reward`) gets. Winners
    /// are re-materialized once via
    /// [`ParallelHev::replay_candidate`].
    ///
    /// Per-lane verdicts and scores are bit-identical to scoring the
    /// scalar reference's outcome: each lane runs the same completion on
    /// the same cached pure context, and `score` sees the same outcome
    /// bits. Records `len()` lane evaluations, exactly like
    /// [`ParallelHev::evaluate_batch`]. After a scored evaluation only
    /// [`CandidateBatch::score`], [`CandidateBatch::is_feasible`], and
    /// [`CandidateBatch::error`] are meaningful — outcome accessors
    /// would index empty arrays.
    pub fn evaluate_batch_scored<F>(
        &self,
        ctx: &StepContext,
        batch: &mut CandidateBatch,
        cache: &mut CurrentContextCache,
        score: F,
    ) where
        F: Fn(&StepOutcome) -> f64,
    {
        batch.reset_scores();
        let n = batch.len();
        if n == 0 {
            return;
        }
        let _span = hev_trace::span::enter("model.scored_sweep");
        crate::instrument::record_batch(n as u64);
        self.evaluate_scored_range(ctx, batch, 0..n, cache, score);
    }

    /// Scores one contiguous lane range of a prepared batch — the
    /// building block fused multi-episode sweeps use to share a single
    /// [`CandidateBatch`] across several independent vehicles.
    ///
    /// Each lane in `range` runs the exact per-lane body of
    /// [`ParallelHev::evaluate_batch_scored`] against *this* vehicle,
    /// `ctx`, and `cache`, writing its verdict and score at the lane's
    /// global index, so a caller that assigns disjoint ranges to
    /// different `(vehicle, context, cache)` triples gets per-range
    /// results bit-identical to separate per-vehicle scored batches.
    ///
    /// The caller owns the bookkeeping this kernel skips: call
    /// [`CandidateBatch::reset_scores`] once after pushing every range,
    /// and record the batch's lane evaluations once
    /// ([`hev_trace::evals::record_batch`] with the *total* lane count)
    /// — this method records nothing itself.
    pub fn evaluate_scored_range<F>(
        &self,
        ctx: &StepContext,
        batch: &mut CandidateBatch,
        range: std::ops::Range<usize>,
        cache: &mut CurrentContextCache,
        score: F,
    ) where
        F: Fn(&StepOutcome) -> f64,
    {
        for lane in range {
            let battery_current_a = batch.currents[lane];
            let cur = cache.get_or_insert(self, battery_current_a, batch.dt);
            let control = ControlInput {
                battery_current_a,
                gear: batch.gears[lane],
                p_aux_w: batch.aux_w[lane],
            };
            match self.complete_control(ctx, cur, &control) {
                Ok(o) => {
                    batch.err[lane] = None;
                    batch.score[lane] = score(&o);
                }
                Err(e) => {
                    batch.err[lane] = Some(e);
                    batch.score[lane] = 0.0;
                }
            }
        }
    }

    /// Re-materializes the full outcome of a candidate an earlier scored
    /// batch already evaluated — the argmax winner — through the same
    /// cached context its lane used.
    ///
    /// A pure replay: the completion is a deterministic function of
    /// `(ctx, cached context, control)`, so the returned bits are the
    /// bits the lane's score was computed from. Because the lane was
    /// already counted by its batch, a replay records **no** additional
    /// evaluation.
    pub fn replay_candidate(
        &self,
        ctx: &StepContext,
        cache: &mut CurrentContextCache,
        control: &ControlInput,
        dt: f64,
    ) -> Result<StepOutcome, InfeasibleControl> {
        let _span = hev_trace::span::enter("model.winner_replay");
        let cur = cache.get_or_insert(self, control.battery_current_a, dt);
        self.complete_control(ctx, cur, control)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HevParams;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    fn outcome_bits(o: &StepOutcome) -> [u64; 13] {
        [
            o.fuel_rate_g_per_s.to_bits(),
            o.fuel_g.to_bits(),
            o.ice_torque_nm.to_bits(),
            o.ice_speed_rad_s.to_bits(),
            o.em_torque_nm.to_bits(),
            o.em_speed_rad_s.to_bits(),
            o.battery_current_a.to_bits(),
            o.battery_power_w.to_bits(),
            o.p_aux_w.to_bits(),
            o.aux_utility.to_bits(),
            o.friction_brake_torque_nm.to_bits(),
            o.soc_before.to_bits(),
            o.soc_after.to_bits(),
        ]
    }

    #[test]
    fn batch_lane_matches_scalar_reference_bit_for_bit() {
        let hev = hev();
        for (v, a) in [(0.0, 0.0), (3.0, 0.4), (20.0, 0.3), (15.0, -1.5)] {
            let d = hev.demand(v, a, 0.0);
            let ctx = hev.step_context(&d);
            let mut batch = CandidateBatch::default();
            batch.begin(1.0);
            for &i in &[-25.0, 0.0, 10.0, 100.0, 1e6] {
                for gear in 0..6 {
                    // gear 5 is invalid: error lanes are part of the contract
                    batch.push(i, gear, 600.0);
                }
            }
            hev.evaluate_batch(&ctx, &mut batch);
            for lane in 0..batch.len() {
                let control = batch.control(lane);
                let scalar = hev.peek_with_context(&ctx, &control, 1.0);
                match (batch.outcome(lane), scalar) {
                    (Ok(b), Ok(s)) => {
                        assert_eq!(outcome_bits(&b), outcome_bits(&s), "lane {lane} v={v}");
                        assert_eq!(b.mode, s.mode);
                        assert_eq!(b.engine_started, s.engine_started);
                    }
                    (Err(b), Err(s)) => assert_eq!(b, s, "lane {lane} v={v}"),
                    (b, s) => panic!("verdict mismatch at lane {lane}: {b:?} vs {s:?}"),
                }
            }
        }
    }

    #[test]
    fn cached_kernel_matches_uncached_bit_for_bit() {
        let hev = hev();
        // One cache spans every demand: contexts depend only on the
        // battery state and dt, neither of which a peek mutates.
        let mut cache = CurrentContextCache::new();
        for (v, a) in [(0.0, 0.0), (3.0, 0.4), (20.0, 0.3), (15.0, -1.5)] {
            let d = hev.demand(v, a, 0.0);
            let ctx = hev.step_context(&d);
            let mut plain = CandidateBatch::default();
            let mut cached = CandidateBatch::default();
            for b in [&mut plain, &mut cached] {
                b.begin(1.0);
                // Interleave currents so the uncached kernel's
                // consecutive-lane reuse never fires but the cache hits.
                for gear in 0..6 {
                    for &i in &[-25.0, 0.0, 10.0, 100.0, 1e6] {
                        b.push(i, gear, 600.0);
                    }
                }
            }
            hev.evaluate_batch(&ctx, &mut plain);
            hev.evaluate_batch_cached(&ctx, &mut cached, &mut cache);
            for lane in 0..plain.len() {
                match (plain.outcome(lane), cached.outcome(lane)) {
                    (Ok(p), Ok(c)) => {
                        assert_eq!(outcome_bits(&p), outcome_bits(&c), "lane {lane} v={v}");
                        assert_eq!(p.mode, c.mode);
                        assert_eq!(p.engine_started, c.engine_started);
                    }
                    (Err(p), Err(c)) => assert_eq!(p, c, "lane {lane} v={v}"),
                    (p, c) => panic!("verdict mismatch at lane {lane}: {p:?} vs {c:?}"),
                }
            }
        }
    }

    #[test]
    fn cached_kernel_counts_one_eval_per_lane() {
        let hev = hev();
        let d = hev.demand(15.0, 0.2, 0.0);
        let ctx = hev.step_context(&d);
        let mut batch = CandidateBatch::default();
        let mut cache = CurrentContextCache::new();
        batch.begin(1.0);
        for gear in 0..5 {
            batch.push(8.0, gear, 600.0);
        }
        let snap = hev_trace::evals::count();
        let calls = hev_trace::evals::batch_calls();
        hev.evaluate_batch_cached(&ctx, &mut batch, &mut cache);
        assert_eq!(hev_trace::evals::since(snap), 5);
        assert_eq!(hev_trace::evals::batch_calls() - calls, 1);
        // A cached empty batch is the same no-op as the uncached one.
        batch.begin(1.0);
        let snap = hev_trace::evals::count();
        hev.evaluate_batch_cached(&ctx, &mut batch, &mut cache);
        assert_eq!(hev_trace::evals::since(snap), 0);
    }

    #[test]
    fn batch_counts_one_eval_per_lane() {
        let hev = hev();
        let d = hev.demand(15.0, 0.2, 0.0);
        let ctx = hev.step_context(&d);
        let mut batch = CandidateBatch::default();
        batch.begin(1.0);
        for gear in 0..5 {
            batch.push(8.0, gear, 600.0);
        }
        let snap = hev_trace::evals::count();
        let calls = hev_trace::evals::batch_calls();
        hev.evaluate_batch(&ctx, &mut batch);
        assert_eq!(hev_trace::evals::since(snap), 5);
        assert_eq!(hev_trace::evals::batch_calls() - calls, 1);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let hev = hev();
        let d = hev.demand(10.0, 0.0, 0.0);
        let ctx = hev.step_context(&d);
        let mut batch = CandidateBatch::default();
        batch.begin(1.0);
        let snap = hev_trace::evals::count();
        hev.evaluate_batch(&ctx, &mut batch);
        assert_eq!(batch.len(), 0);
        assert_eq!(hev_trace::evals::since(snap), 0);
    }

    #[test]
    fn direct_mapped_cache_counts_hits_and_misses() {
        let hev = hev();
        let mut cache = CurrentContextCache::new();
        let (h0, m0) = (
            hev_trace::evals::ctx_cache_hits(),
            hev_trace::evals::ctx_cache_misses(),
        );
        cache.get_or_insert(&hev, 10.0, 1.0);
        cache.get_or_insert(&hev, 10.0, 1.0);
        cache.get_or_insert(&hev, 10.0, 1.0);
        cache.get_or_insert(&hev, -25.0, 1.0);
        assert_eq!(hev_trace::evals::ctx_cache_hits().wrapping_sub(h0), 2);
        assert_eq!(hev_trace::evals::ctx_cache_misses().wrapping_sub(m0), 2);
        // clear() invalidates in O(1): the next lookup misses again.
        cache.clear();
        let m1 = hev_trace::evals::ctx_cache_misses();
        cache.get_or_insert(&hev, 10.0, 1.0);
        assert_eq!(hev_trace::evals::ctx_cache_misses().wrapping_sub(m1), 1);
        // Cache bookkeeping never counts as a peek-equivalent eval.
        let snap = hev_trace::evals::count();
        cache.get_or_insert(&hev, 10.0, 1.0);
        assert_eq!(hev_trace::evals::since(snap), 0);
    }

    #[test]
    fn conflict_eviction_replays_the_same_bits() {
        let hev = hev();
        // Find two distinct currents that collide in the direct map.
        let base = 10.0_f64;
        let slot = CurrentContextCache::slot_of(base.to_bits());
        let other = (1..100_000)
            .map(|k| 10.0 + k as f64 * 0.001)
            .find(|i| CurrentContextCache::slot_of(i.to_bits()) == slot && *i != base)
            .expect("a colliding current exists");
        let mut cache = CurrentContextCache::new();
        let first = *cache.get_or_insert(&hev, base, 1.0);
        // Evict, then re-fetch: the pure function must reproduce the
        // evicted context bit for bit.
        cache.get_or_insert(&hev, other, 1.0);
        let refetched = *cache.get_or_insert(&hev, base, 1.0);
        assert_eq!(
            first.battery_current_a().to_bits(),
            refetched.battery_current_a().to_bits()
        );
        assert_eq!(first.is_feasible(), refetched.is_feasible());
    }

    #[test]
    fn scored_range_matches_the_scored_kernel_bit_for_bit() {
        let hev = hev();
        let d = hev.demand(15.0, 0.3, 0.0);
        let ctx = hev.step_context(&d);
        let mut whole = CandidateBatch::default();
        let mut ranged = CandidateBatch::default();
        for b in [&mut whole, &mut ranged] {
            b.begin(1.0);
            for gear in 0..5 {
                for &i in &[-25.0, 0.0, 10.0, 100.0] {
                    b.push(i, gear, 600.0);
                }
            }
        }
        let mut cache = CurrentContextCache::new();
        hev.evaluate_batch_scored(&ctx, &mut whole, &mut cache, |o| -o.fuel_g);
        cache.clear();
        // The fused protocol: prepare once, score disjoint ranges, count
        // the total once.
        ranged.reset_scores();
        let snap = hev_trace::evals::count();
        hev_trace::evals::record_batch(ranged.len() as u64);
        let mid = ranged.len() / 2;
        hev.evaluate_scored_range(&ctx, &mut ranged, 0..mid, &mut cache, |o| -o.fuel_g);
        hev.evaluate_scored_range(&ctx, &mut ranged, mid..20, &mut cache, |o| -o.fuel_g);
        assert_eq!(hev_trace::evals::since(snap), 20);
        for lane in 0..whole.len() {
            assert_eq!(whole.error(lane), ranged.error(lane), "lane {lane}");
            assert_eq!(
                whole.score(lane).map(f64::to_bits),
                ranged.score(lane).map(f64::to_bits),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn begin_reuses_allocations_and_resets_lanes() {
        let hev = hev();
        let d = hev.demand(10.0, 0.0, 0.0);
        let ctx = hev.step_context(&d);
        let mut batch = CandidateBatch::default();
        batch.begin(1.0);
        batch.push_tagged(4.0, 1, 600.0, 7);
        hev.evaluate_batch(&ctx, &mut batch);
        assert_eq!(batch.tag(0), 7);
        batch.begin(0.5);
        assert!(batch.is_empty());
        assert_eq!(batch.dt(), 0.5);
    }
}
