//! Error types for the HEV model.

use std::error::Error;
use std::fmt;

/// Error returned when a parameter set fails validation.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    /// The parameter (or parameter group) that failed validation.
    pub field: &'static str,
    /// Human-readable description of the violation.
    pub reason: String,
}

impl ParamError {
    pub(crate) fn new(field: &'static str, reason: impl Into<String>) -> Self {
        Self {
            field,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid parameter `{}`: {}", self.field, self.reason)
    }
}

impl Error for ParamError {}

/// Reason a control input cannot be realized by the powertrain at the
/// current operating point.
///
/// Controllers use these as *action masks*: an action whose
/// [`ParallelHev::peek`](crate::vehicle::ParallelHev::peek) returns an
/// `InfeasibleControl` must not be selected.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // variant fields carry self-describing names/units
pub enum InfeasibleControl {
    /// The gear index is outside the gearbox range.
    InvalidGear { gear: usize, num_gears: usize },
    /// The auxiliary power is outside its allowed range.
    AuxPowerRange {
        p_aux_w: f64,
        min_w: f64,
        max_w: f64,
    },
    /// The requested battery current exceeds the pack's current limits.
    BatteryCurrent {
        current_a: f64,
        min_a: f64,
        max_a: f64,
    },
    /// Taking this action would push the state of charge outside the
    /// charge-sustaining window.
    BatteryWindow {
        soc_after: f64,
        soc_min: f64,
        soc_max: f64,
    },
    /// The battery cannot supply/absorb the implied terminal power.
    BatteryPower { power_w: f64 },
    /// The electric machine cannot convert the implied electrical power at
    /// this shaft speed.
    MotorPower { p_elec_w: f64, speed_rad_s: f64 },
    /// The required motor torque exceeds the machine's torque envelope.
    MotorTorque {
        torque_nm: f64,
        min_nm: f64,
        max_nm: f64,
    },
    /// The electric machine would spin faster than its maximum speed.
    MotorSpeed { speed_rad_s: f64, max_rad_s: f64 },
    /// The engine would have to spin outside its operating speed range.
    EngineSpeed {
        speed_rad_s: f64,
        min_rad_s: f64,
        max_rad_s: f64,
    },
    /// The required engine torque exceeds the wide-open-throttle curve.
    EngineTorque { torque_nm: f64, max_nm: f64 },
    /// The electric path would deliver more torque than the wheels demand
    /// while propelling (the engine cannot absorb torque).
    ExcessMotorTorque { surplus_nm: f64 },
    /// Regenerative braking would exceed the braking demand (the vehicle
    /// would accelerate while the driver brakes).
    ExcessRegen { surplus_nm: f64 },
    /// Positive motor torque was commanded while the driver is braking.
    PowerDuringBraking { torque_nm: f64 },
    /// Electrical power was routed through a stalled machine (vehicle at
    /// rest).
    MotorStalled { p_elec_w: f64 },
}

impl fmt::Display for InfeasibleControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use InfeasibleControl::*;
        match self {
            InvalidGear { gear, num_gears } => {
                write!(
                    f,
                    "gear {gear} out of range (gearbox has {num_gears} gears)"
                )
            }
            AuxPowerRange {
                p_aux_w,
                min_w,
                max_w,
            } => {
                write!(
                    f,
                    "auxiliary power {p_aux_w} W outside [{min_w}, {max_w}] W"
                )
            }
            BatteryCurrent {
                current_a,
                min_a,
                max_a,
            } => {
                write!(
                    f,
                    "battery current {current_a} A outside [{min_a}, {max_a}] A"
                )
            }
            BatteryWindow {
                soc_after,
                soc_min,
                soc_max,
            } => write!(
                f,
                "state of charge {soc_after:.3} would leave window [{soc_min}, {soc_max}]"
            ),
            BatteryPower { power_w } => {
                write!(f, "battery cannot realize terminal power {power_w} W")
            }
            MotorPower {
                p_elec_w,
                speed_rad_s,
            } => write!(
                f,
                "motor cannot convert {p_elec_w} W electrical at {speed_rad_s} rad/s"
            ),
            MotorTorque {
                torque_nm,
                min_nm,
                max_nm,
            } => {
                write!(
                    f,
                    "motor torque {torque_nm} N·m outside [{min_nm}, {max_nm}] N·m"
                )
            }
            MotorSpeed {
                speed_rad_s,
                max_rad_s,
            } => {
                write!(
                    f,
                    "motor speed {speed_rad_s} rad/s exceeds maximum {max_rad_s} rad/s"
                )
            }
            EngineSpeed {
                speed_rad_s,
                min_rad_s,
                max_rad_s,
            } => write!(
                f,
                "engine speed {speed_rad_s} rad/s outside [{min_rad_s}, {max_rad_s}] rad/s"
            ),
            EngineTorque { torque_nm, max_nm } => {
                write!(
                    f,
                    "engine torque {torque_nm} N·m exceeds maximum {max_nm} N·m"
                )
            }
            ExcessMotorTorque { surplus_nm } => {
                write!(
                    f,
                    "electric path over-delivers {surplus_nm} N·m while propelling"
                )
            }
            ExcessRegen { surplus_nm } => {
                write!(f, "regeneration over-brakes by {surplus_nm} N·m")
            }
            PowerDuringBraking { torque_nm } => {
                write!(
                    f,
                    "positive motor torque {torque_nm} N·m commanded while braking"
                )
            }
            MotorStalled { p_elec_w } => {
                write!(f, "cannot route {p_elec_w} W through a stalled machine")
            }
        }
    }
}

impl Error for InfeasibleControl {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_error_display() {
        let e = ParamError::new("mass_kg", "must be positive");
        assert_eq!(
            e.to_string(),
            "invalid parameter `mass_kg`: must be positive"
        );
    }

    #[test]
    fn infeasible_variants_display_nonempty() {
        use InfeasibleControl::*;
        let variants = [
            InvalidGear {
                gear: 9,
                num_gears: 5,
            },
            AuxPowerRange {
                p_aux_w: 2e3,
                min_w: 100.0,
                max_w: 1500.0,
            },
            BatteryCurrent {
                current_a: 300.0,
                min_a: -80.0,
                max_a: 120.0,
            },
            BatteryWindow {
                soc_after: 0.39,
                soc_min: 0.4,
                soc_max: 0.8,
            },
            BatteryPower { power_w: 1e6 },
            MotorPower {
                p_elec_w: 9e4,
                speed_rad_s: 100.0,
            },
            MotorTorque {
                torque_nm: 200.0,
                min_nm: -85.0,
                max_nm: 85.0,
            },
            EngineSpeed {
                speed_rad_s: 700.0,
                min_rad_s: 105.0,
                max_rad_s: 576.0,
            },
            EngineTorque {
                torque_nm: 150.0,
                max_nm: 108.0,
            },
            ExcessMotorTorque { surplus_nm: 10.0 },
            ExcessRegen { surplus_nm: 5.0 },
            PowerDuringBraking { torque_nm: 20.0 },
            MotorStalled { p_elec_w: 500.0 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
