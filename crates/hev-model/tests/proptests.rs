//! Property-based tests of the powertrain component models.

use hev_model::{
    Battery, BatteryParams, BodyParams, ControlInput, Drivetrain, DrivetrainParams, Engine,
    HevParams, IceParams, Motor, MotorParams, ParallelHev, VehicleBody,
};
use proptest::prelude::*;

fn engine() -> Engine {
    Engine::new(IceParams::default()).expect("valid defaults")
}

fn motor() -> Motor {
    Motor::new(MotorParams::default()).expect("valid defaults")
}

fn battery() -> Battery {
    Battery::new(BatteryParams::default(), 0.6).expect("valid defaults")
}

proptest! {
    /// Engine efficiency is bounded and fuel flow is consistent with it.
    #[test]
    fn engine_efficiency_bounded(torque in 0.1f64..120.0, speed in 105.0f64..575.0) {
        let e = engine();
        let eta = e.efficiency(torque, speed);
        prop_assert!(eta > 0.0 && eta <= e.params().peak_efficiency + 1e-12);
        let mdot = e.fuel_rate(torque, speed);
        prop_assert!(mdot > 0.0);
        let back = torque * speed / (mdot * e.params().fuel_lhv_j_per_g);
        prop_assert!((back - eta).abs() < 1e-9);
    }

    /// The wide-open-throttle curve is continuous (no interpolation
    /// jumps): nearby speeds give nearby torque limits.
    #[test]
    fn engine_torque_curve_lipschitz(speed in 100.0f64..570.0, delta in 0.0f64..1.0) {
        let e = engine();
        let a = e.max_torque(speed);
        let b = e.max_torque(speed + delta);
        prop_assert!((a - b).abs() <= delta * 1.0 + 1e-9); // ≤ 1 N·m per rad/s
    }

    /// The motor's electrical power is monotone in torque on the control
    /// branch, and the inverse map recovers the torque there.
    #[test]
    fn motor_inverse_on_control_branch(
        t in -60.0f64..85.0,
        w in 20.0f64..1000.0,
    ) {
        let m = motor();
        let vertex = -w / (2.0 * m.params().copper_loss);
        prop_assume!(t > vertex);
        let p = m.electrical_power(t, w);
        let t_back = m.torque_from_electrical_power(p, w).expect("on-branch inverse");
        prop_assert!((t_back - t).abs() < 1e-6);
    }

    /// Motoring efficiency never exceeds 1; generating efficiency (when
    /// defined) is in (0, 1].
    #[test]
    fn motor_efficiency_bounded(t in -85.0f64..85.0, w in 10.0f64..1000.0) {
        let m = motor();
        if let Some(eta) = m.efficiency(t, w) {
            prop_assert!(eta > 0.0 && eta <= 1.0 + 1e-12, "eta {eta} at t={t} w={w}");
        }
    }

    /// Battery current→power→current roundtrips on the physical branch.
    #[test]
    fn battery_power_current_roundtrip(i in -80.0f64..120.0) {
        let b = battery();
        let p = b.terminal_power(i);
        // The quadratic's physical branch covers |i| < V/(2R) ≈ 510 A.
        let i_back = b.current_for_power(p).expect("within physical range");
        prop_assert!((i_back - i).abs() < 1e-6);
    }

    /// Coulomb counting is exact and symmetric.
    #[test]
    fn coulomb_counting_symmetry(i in 0.5f64..60.0, dt in 0.1f64..60.0) {
        let mut b = battery();
        let q0 = b.soc();
        prop_assume!(b.soc_after(i, dt) > 0.401 && b.soc_after(-i, dt) < 0.799);
        b.step(i, dt).expect("discharge ok");
        b.step(-i, dt).expect("charge ok");
        prop_assert!((b.soc() - q0).abs() < 1e-12);
    }

    /// Drivetrain wheel-torque/shaft-torque maps invert each other for
    /// the engine-only path in every gear.
    #[test]
    fn drivetrain_inverse(t_wh in -600.0f64..800.0, gear in 0usize..5) {
        let d = Drivetrain::new(DrivetrainParams::default()).expect("valid defaults");
        let shaft = d.required_shaft_torque(t_wh, gear);
        let back = d.wheel_torque(shaft, 0.0, gear);
        prop_assert!((back - t_wh).abs() < 1e-9);
    }

    /// Tractive force decomposes additively: inertia-only plus
    /// resistances-only equals the total (grade fixed).
    #[test]
    fn tractive_force_superposition(v in 0.1f64..40.0, a in -3.0f64..3.0) {
        let body = VehicleBody::new(BodyParams::default()).expect("valid defaults");
        let total = body.tractive_force(v, a, 0.0);
        let inertia = body.tractive_force(0.0, a, 0.0); // no speed → no drag/roll
        let resist = body.tractive_force(v, 0.0, 0.0);
        prop_assert!((total - (inertia + resist)).abs() < 1e-9);
    }

    /// The staged pipeline (context precompute + completion) is
    /// bit-identical to the monolithic [`ParallelHev::peek`] — same
    /// outcome on success, same infeasibility reason on failure — for
    /// randomized demand, battery state, and control, across the
    /// stopped/braking/propelling boundaries.
    #[test]
    fn staged_completion_matches_monolithic_peek(
        v in 0.0f64..30.0,
        // A second speed near the stop threshold (0.05 m/s) so every run
        // also exercises the Stopped boundary.
        v_near_stop in 0.0f64..0.12,
        accel in -3.0f64..2.0,
        i in -80.0f64..120.0,
        gear in 0usize..6, // one past the last gear: invalid-gear parity too
        p_aux in 0.0f64..2500.0,
        soc in 0.41f64..0.79, // the model's charge-sustaining window
    ) {
        let hev = ParallelHev::new(HevParams::default_parallel_hev(), soc)
            .expect("valid defaults");
        for speed in [v, v_near_stop] {
            let demand = hev.demand(speed, accel, 0.0);
            let control = ControlInput { battery_current_a: i, gear, p_aux_w: p_aux };
            let dt = 1.0;

            let monolithic = hev.peek(&demand, &control, dt);

            let ctx = hev.step_context(&demand);
            let staged = hev.peek_with_context(&ctx, &control, dt);
            prop_assert_eq!(&staged, &monolithic);

            let cur = hev.current_context(i, dt);
            let staged2 = hev.peek_with_contexts(&ctx, &cur, &control);
            prop_assert_eq!(&staged2, &monolithic);

            // Bit-identical, not just approximately equal: every f64
            // field of a successful outcome matches to the bit.
            if let (Ok(a), Ok(b)) = (&staged, &monolithic) {
                prop_assert_eq!(a.soc_after.to_bits(), b.soc_after.to_bits());
                prop_assert_eq!(a.fuel_g.to_bits(), b.fuel_g.to_bits());
                prop_assert_eq!(a.battery_power_w.to_bits(), b.battery_power_w.to_bits());
                prop_assert_eq!(a.em_torque_nm.to_bits(), b.em_torque_nm.to_bits());
                prop_assert_eq!(a.ice_torque_nm.to_bits(), b.ice_torque_nm.to_bits());
                prop_assert_eq!(a.aux_utility.to_bits(), b.aux_utility.to_bits());
            }
        }
    }

    /// A committed step always reports soc_after equal to the vehicle's
    /// state, for any feasible action.
    #[test]
    fn step_commit_consistency(
        v in 0.0f64..30.0,
        accel in -2.0f64..1.5,
        i in -60.0f64..100.0,
        gear in 0usize..5,
    ) {
        let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)
            .expect("valid defaults");
        let demand = hev.demand(v, accel, 0.0);
        let control = ControlInput { battery_current_a: i, gear, p_aux_w: 600.0 };
        if let Ok(o) = hev.step(&demand, &control, 1.0) {
            prop_assert_eq!(o.soc_after, hev.soc());
            prop_assert_eq!(o.soc_before, 0.6);
            prop_assert_eq!(hev.engine_on(), o.ice_speed_rad_s > 0.0);
        }
    }
}
