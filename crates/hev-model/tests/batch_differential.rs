//! The batch-vs-scalar differential suite.
//!
//! [`ParallelHev::evaluate_batch`]'s contract is that every lane is
//! **bit-identical** — every float field via `to_bits()`, every
//! feasibility verdict, every error variant — to a scalar
//! [`ParallelHev::peek_with_context`] call with the same control. A
//! silent divergence here would corrupt every downstream result (masks,
//! argmaxes, trained Q-tables), so this suite pins the contract with
//! zero tolerance across:
//!
//! * all five standard cycles the paper's experiments run on (OSCAR,
//!   UDDS, MODEM, SC03, HWFET), over a rolling battery state;
//! * fault-perturbed vehicles (motor derating, battery capacity fade —
//!   the plant-side knobs `hev-control`'s fault plans turn);
//! * proptest-randomized states and candidate grids, including the
//!   degenerate batch shapes: empty, single-candidate, all-infeasible,
//!   and duplicate candidates.

use drive_cycle::StandardCycle;
use hev_model::{CandidateBatch, ControlInput, HevParams, ParallelHev, StepOutcome};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn hev_at(soc: f64) -> ParallelHev {
    ParallelHev::new(HevParams::default_parallel_hev(), soc).expect("valid defaults")
}

/// Every float field of an outcome, as raw bits.
fn bits(o: &StepOutcome) -> [u64; 13] {
    [
        o.fuel_rate_g_per_s.to_bits(),
        o.fuel_g.to_bits(),
        o.ice_torque_nm.to_bits(),
        o.ice_speed_rad_s.to_bits(),
        o.em_torque_nm.to_bits(),
        o.em_speed_rad_s.to_bits(),
        o.battery_current_a.to_bits(),
        o.battery_power_w.to_bits(),
        o.p_aux_w.to_bits(),
        o.aux_utility.to_bits(),
        o.friction_brake_torque_nm.to_bits(),
        o.soc_before.to_bits(),
        o.soc_after.to_bits(),
    ]
}

/// Evaluates `batch` and asserts every lane bit-matches the looped
/// scalar reference at the same context.
fn assert_batch_matches_scalar(
    hev: &ParallelHev,
    ctx: &hev_model::StepContext,
    batch: &mut CandidateBatch,
    dt: f64,
    label: &str,
) {
    hev.evaluate_batch(ctx, batch);
    for lane in 0..batch.len() {
        let control = batch.control(lane);
        let scalar = hev.peek_with_context(ctx, &control, dt);
        match (batch.outcome(lane), scalar) {
            (Ok(b), Ok(s)) => {
                assert_eq!(
                    bits(&b),
                    bits(&s),
                    "{label}: float fields diverged at lane {lane} ({control:?})"
                );
                assert_eq!(b.mode, s.mode, "{label}: mode diverged at lane {lane}");
                assert_eq!(
                    b.engine_started, s.engine_started,
                    "{label}: engine_started diverged at lane {lane}"
                );
            }
            (Err(b), Err(s)) => {
                assert_eq!(b, s, "{label}: error variant diverged at lane {lane}");
            }
            (b, s) => {
                panic!("{label}: feasibility verdict diverged at lane {lane} ({control:?}): batch {b:?} vs scalar {s:?}")
            }
        }
    }
}

/// The candidate grid a controller-like sweep probes at one step:
/// the default 15-value current ladder × every gear (plus one invalid
/// gear for the error path) × three auxiliary powers.
fn push_standard_grid(batch: &mut CandidateBatch) {
    const CURRENTS: [f64; 15] = [
        -60.0, -40.0, -25.0, -15.0, -8.0, -4.0, 0.0, 4.0, 8.0, 15.0, 25.0, 40.0, 60.0, 80.0, 100.0,
    ];
    for &i in &CURRENTS {
        for gear in 0..6 {
            for aux in [100.0, 600.0, 1_500.0] {
                batch.push(i, gear, aux);
            }
        }
    }
}

/// The five standard cycles of the paper's experiments, each swept with
/// the standard candidate grid over a rolling battery state.
#[test]
fn batch_matches_scalar_on_all_five_standard_cycles() {
    let cycles = [
        StandardCycle::Oscar,
        StandardCycle::Udds,
        StandardCycle::ModemUrban,
        StandardCycle::Sc03,
        StandardCycle::Hwfet,
    ];
    let mut batch = CandidateBatch::default();
    for sc in cycles {
        let cycle = sc.cycle();
        let dt = cycle.dt();
        let mut hev = hev_at(0.6);
        // Subsampled steps keep the suite fast while still crossing every
        // stopped/braking/propelling region of each cycle; the SOC rolls
        // deterministically over the charge window so lanes see varied
        // battery states.
        for (step, point) in cycle.points().enumerate().step_by(7) {
            let soc = 0.41 + 0.38 * ((step % 97) as f64 / 96.0);
            hev.reset_soc(soc);
            let demand = hev.demand(point.speed_mps, point.accel_mps2, point.grade);
            let ctx = hev.step_context(&demand);
            batch.begin(dt);
            push_standard_grid(&mut batch);
            assert_batch_matches_scalar(
                &hev,
                &ctx,
                &mut batch,
                dt,
                &format!("{} step {step}", cycle.name()),
            );
        }
    }
}

/// Fault-perturbed plants: motor derating and battery capacity fade are
/// the plant-side degradations `hev-control`'s fault plans apply; the
/// kernel must stay bit-faithful on a degraded vehicle too.
#[test]
fn batch_matches_scalar_on_fault_perturbed_vehicles() {
    let cycle = StandardCycle::Udds.cycle();
    let dt = cycle.dt();
    let mut batch = CandidateBatch::default();
    for (derate, fade) in [(0.6, 0.0), (1.0, 0.2), (0.75, 0.15)] {
        let mut hev = hev_at(0.55);
        hev.set_motor_derate(derate);
        hev.apply_battery_capacity_fade(fade);
        for (step, point) in cycle.points().enumerate().step_by(23) {
            let demand = hev.demand(point.speed_mps, point.accel_mps2, point.grade);
            let ctx = hev.step_context(&demand);
            batch.begin(dt);
            push_standard_grid(&mut batch);
            assert_batch_matches_scalar(
                &hev,
                &ctx,
                &mut batch,
                dt,
                &format!("derate {derate} fade {fade} step {step}"),
            );
        }
    }
}

/// Randomized states and candidate lists from a seeded RNG (denser than
/// the proptest cases below, covering the whole operating envelope).
#[test]
fn batch_matches_scalar_on_randomized_states() {
    let mut rng = StdRng::seed_from_u64(0x5eed_ba7c);
    let mut batch = CandidateBatch::default();
    for round in 0..200 {
        let soc = rng.gen_range(0.41..0.79);
        let hev = hev_at(soc);
        let v = if rng.gen::<f64>() < 0.2 {
            rng.gen_range(0.0..0.12) // cluster near the stop threshold
        } else {
            rng.gen_range(0.0..32.0)
        };
        let a = rng.gen_range(-3.0..2.5);
        let grade = rng.gen_range(-0.06..0.06);
        let dt = 1.0;
        let demand = hev.demand(v, a, grade);
        let ctx = hev.step_context(&demand);
        batch.begin(dt);
        let lanes = rng.gen_range(1..40usize);
        for _ in 0..lanes {
            batch.push(
                rng.gen_range(-90.0..130.0),
                rng.gen_range(0..7usize), // includes invalid gears
                rng.gen_range(-100.0..2_600.0),
            );
        }
        assert_batch_matches_scalar(&hev, &ctx, &mut batch, dt, &format!("random round {round}"));
    }
}

proptest! {
    /// An empty batch is a no-op: no lanes, no outputs, no evaluations
    /// recorded.
    #[test]
    fn empty_batch_is_no_op(v in 0.0f64..30.0, a in -2.0f64..2.0) {
        let hev = hev_at(0.6);
        let demand = hev.demand(v, a, 0.0);
        let ctx = hev.step_context(&demand);
        let mut batch = CandidateBatch::default();
        batch.begin(1.0);
        let snap = hev_trace::evals::count();
        hev.evaluate_batch(&ctx, &mut batch);
        prop_assert_eq!(batch.len(), 0);
        prop_assert_eq!(hev_trace::evals::since(snap), 0);
    }

    /// A single-candidate batch is exactly one scalar peek.
    #[test]
    fn single_candidate_batch_matches_scalar(
        v in 0.0f64..30.0,
        a in -2.5f64..2.0,
        i in -80.0f64..120.0,
        gear in 0usize..6,
        p_aux in 0.0f64..2_500.0,
        soc in 0.41f64..0.79,
    ) {
        let hev = hev_at(soc);
        let demand = hev.demand(v, a, 0.0);
        let ctx = hev.step_context(&demand);
        let mut batch = CandidateBatch::default();
        batch.begin(1.0);
        batch.push(i, gear, p_aux);
        hev.evaluate_batch(&ctx, &mut batch);
        let control = ControlInput { battery_current_a: i, gear, p_aux_w: p_aux };
        let scalar = hev.peek_with_context(&ctx, &control, 1.0);
        match (batch.outcome(0), scalar) {
            (Ok(b), Ok(s)) => {
                prop_assert_eq!(bits(&b), bits(&s));
                prop_assert_eq!(b.mode, s.mode);
            }
            (Err(b), Err(s)) => prop_assert_eq!(b, s),
            (b, s) => prop_assert!(false, "verdict diverged: {:?} vs {:?}", b, s),
        }
    }

    /// An all-infeasible batch (every lane commands an out-of-range
    /// gear) reports every lane infeasible with the scalar error, and
    /// still counts one evaluation per lane.
    #[test]
    fn all_infeasible_batch_matches_scalar_errors(
        v in 0.0f64..30.0,
        a in -2.0f64..2.0,
        lanes in 1usize..20,
        gear_offset in 6usize..50,
    ) {
        let hev = hev_at(0.6);
        let demand = hev.demand(v, a, 0.0);
        let ctx = hev.step_context(&demand);
        let mut batch = CandidateBatch::default();
        batch.begin(1.0);
        for k in 0..lanes {
            batch.push(4.0, gear_offset + k, 600.0);
        }
        let snap = hev_trace::evals::count();
        hev.evaluate_batch(&ctx, &mut batch);
        prop_assert_eq!(hev_trace::evals::since(snap), lanes as u64);
        for lane in 0..batch.len() {
            let control = batch.control(lane);
            let scalar = hev.peek_with_context(&ctx, &control, 1.0);
            let scalar_err = scalar.expect_err("out-of-range gear must be infeasible");
            prop_assert!(!batch.is_feasible(lane));
            prop_assert_eq!(batch.error(lane), Some(scalar_err));
        }
    }

    /// Duplicate candidates resolve to identical lanes (the shared
    /// current-context reuse must not leak state between lanes), each
    /// bit-matching the scalar call.
    #[test]
    fn duplicate_candidates_resolve_identically(
        v in 0.0f64..30.0,
        a in -2.0f64..2.0,
        i in -60.0f64..100.0,
        gear in 0usize..5,
        copies in 2usize..9,
    ) {
        let hev = hev_at(0.6);
        let demand = hev.demand(v, a, 0.0);
        let ctx = hev.step_context(&demand);
        let mut batch = CandidateBatch::default();
        batch.begin(1.0);
        for _ in 0..copies {
            batch.push(i, gear, 600.0);
        }
        // Interleave a different current between two more copies, so the
        // kernel's context reuse is forced to rebuild and come back.
        batch.push(i + 7.0, gear, 600.0);
        batch.push(i, gear, 600.0);
        hev.evaluate_batch(&ctx, &mut batch);
        let control = ControlInput { battery_current_a: i, gear, p_aux_w: 600.0 };
        let scalar = hev.peek_with_context(&ctx, &control, 1.0);
        for lane in (0..copies).chain([copies + 1]) {
            match (batch.outcome(lane), &scalar) {
                (Ok(b), Ok(s)) => prop_assert_eq!(bits(&b), bits(s)),
                (Err(b), Err(s)) => prop_assert_eq!(b, *s),
                (b, s) => prop_assert!(false, "lane {} diverged: {:?} vs {:?}", lane, b, s),
            }
        }
    }
}
