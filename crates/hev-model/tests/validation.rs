//! Validation against hand-computed physics: every number here was
//! derived independently from the model equations with a calculator, so
//! a regression in any component shows up as a factual disagreement,
//! not just a changed snapshot.

use hev_model::{
    Battery, BatteryParams, BodyParams, ControlInput, Drivetrain, DrivetrainParams, Engine,
    HevParams, IceParams, Motor, MotorParams, ParallelHev, VehicleBody,
};

#[test]
fn tractive_force_100_kmh_cruise() {
    // v = 27.78 m/s, a = 0, flat:
    //   F_roll = 1350 · 9.81 · 0.009            = 119.19 N
    //   F_drag = 0.5 · 1.2 · 0.30 · 2.0 · v²    = 0.36 · 771.6 = 277.8 N
    let body = VehicleBody::new(BodyParams::default()).unwrap();
    let f = body.tractive_force(27.78, 0.0, 0.0);
    assert!((f - (119.19 + 277.79)).abs() < 0.5, "F = {f}");
    // Power ≈ 11.0 kW.
    let p = body.demand(27.78, 0.0, 0.0).power_demand_w;
    assert!((p - 11_028.0).abs() < 50.0, "P = {p}");
}

#[test]
fn grade_force_5_percent() {
    // 5 % grade: θ = atan(0.05), F_g = m·g·sinθ = 1350·9.81·0.049938 ≈ 661 N.
    let body = VehicleBody::new(BodyParams::default()).unwrap();
    let with = body.tractive_force(10.0, 0.0, 0.05);
    let without = body.tractive_force(10.0, 0.0, 0.0);
    assert!(
        ((with - without) - 661.4).abs() < 2.0,
        "F_g = {}",
        with - without
    );
}

#[test]
fn engine_fuel_at_best_point() {
    // Best point: ω = 261.8 rad/s (2500 rpm), load 0.8 of T_max.
    // T_max(2500 rpm) interpolates 95→105 N·m at the midpoint = 100 N·m,
    // so T = 80 N·m, P = 20.94 kW, η = 0.36:
    //   ṁ = P / (η·42600) = 20944 / 15336 ≈ 1.366 g/s.
    let e = Engine::new(IceParams::default()).unwrap();
    let w = 2_500.0 * std::f64::consts::PI / 30.0;
    let t = 0.8 * e.max_torque(w);
    assert!((e.max_torque(w) - 100.0).abs() < 0.1);
    let mdot = e.fuel_rate(t, w);
    assert!((mdot - 1.366).abs() < 0.01, "mdot = {mdot}");
}

#[test]
fn motor_losses_at_rated_point() {
    // ω = 500 rad/s, T = 50 N·m (25 kW mech):
    //   P_loss = 0.4·2500 + 0.6·500 + 2e-7·1.25e8 + 50
    //          = 1000 + 300 + 25 + 50 = 1375 W
    //   η = 25000 / 26375 ≈ 0.9479.
    let m = Motor::new(MotorParams::default()).unwrap();
    assert!((m.power_loss(50.0, 500.0) - 1_375.0).abs() < 1e-9);
    let eta = m.efficiency(50.0, 500.0).unwrap();
    assert!((eta - 0.9479).abs() < 0.001, "eta = {eta}");
}

#[test]
fn battery_terminal_voltage_drop() {
    // At 60 % SoC: V_oc = 270 + 60·0.6 = 306 V.
    // Discharging 50 A: P = 306·50 − 0.3·2500 = 15300 − 750 = 14550 W.
    let b = Battery::new(BatteryParams::default(), 0.6).unwrap();
    assert!((b.ocv() - 306.0).abs() < 1e-12);
    assert!((b.terminal_power(50.0) - 14_550.0).abs() < 1e-9);
    // Charging 50 A absorbs 306·50 + 0.36·2500 = 15300 + 900 = 16200 W.
    assert!((b.terminal_power(-50.0) + 16_200.0).abs() < 1e-9);
}

#[test]
fn battery_one_percent_soc_is_936_coulombs() {
    // 26 Ah = 93 600 C; 1 % = 936 C = 936 A·s.
    let mut b = Battery::new(BatteryParams::default(), 0.6).unwrap();
    b.step(93.6, 10.0).unwrap();
    assert!((b.soc() - 0.59).abs() < 1e-12);
}

#[test]
fn gear_speeds_at_50_kmh() {
    // v = 13.89 m/s → ω_wh = 49.25 rad/s.
    // Gear 3 (overall 3.94): ω_ICE = 194.1 rad/s ≈ 1853 rpm;
    // ω_EM = 388.1 rad/s.
    let d = Drivetrain::new(DrivetrainParams::default()).unwrap();
    let w_wh = 13.89 / 0.282;
    assert!((d.ice_speed(w_wh, 3) - 194.05).abs() < 0.5);
    assert!((d.em_speed(w_wh, 3) - 388.1).abs() < 1.0);
}

#[test]
fn ev_launch_energy_balance() {
    // A gentle launch fully electric: the battery power must equal the
    // machine's electrical power plus the auxiliary load exactly.
    let hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap();
    let d = hev.demand(3.0, 0.3, 0.0);
    let o = hev
        .peek(
            &d,
            &ControlInput {
                battery_current_a: 30.0,
                gear: 0,
                p_aux_w: 600.0,
            },
            1.0,
        )
        .unwrap();
    let p_em = hev
        .motor()
        .electrical_power(o.em_torque_nm, o.em_speed_rad_s);
    assert!(
        (o.battery_power_w - (p_em + 600.0)).abs() < 1e-6,
        "bus imbalance: {} vs {}",
        o.battery_power_w,
        p_em + 600.0
    );
    // And the machine's wheel torque matches the demand exactly.
    let t_wh = hev.drivetrain().wheel_torque(0.0, o.em_torque_nm, 0);
    assert!((t_wh - d.wheel_torque_nm).abs() < 1e-6);
}

#[test]
fn engine_on_torque_balance_closed_form() {
    // 72 km/h cruise, 4th gear, i = 0: the machine generates exactly the
    // auxiliary load; the engine covers demand + generation drag.
    let hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap();
    let d = hev.demand(20.0, 0.0, 0.0);
    let o = hev
        .peek(
            &d,
            &ControlInput {
                battery_current_a: 0.0,
                gear: 3,
                p_aux_w: 600.0,
            },
            1.0,
        )
        .unwrap();
    // P_batt = 0 ⟹ machine input = −600 W (it generates the aux load).
    assert!((o.battery_power_w).abs() < 1e-9);
    let p_em = hev
        .motor()
        .electrical_power(o.em_torque_nm, o.em_speed_rad_s);
    assert!((p_em + 600.0).abs() < 1e-6, "p_em = {p_em}");
    // Torque balance through Eq. 8.
    let back = hev
        .drivetrain()
        .wheel_torque(o.ice_torque_nm, o.em_torque_nm, 3);
    assert!((back - d.wheel_torque_nm).abs() < 1e-6);
}

#[test]
fn fuel_economy_magnitudes_on_steady_cruise() {
    // 90 km/h steady cruise, engine-only-ish: demand ≈ 8.6 kW, engine
    // η ≈ 0.30 ⟹ ≈ 0.7 g/s ⟹ ≈ 35-55 mpg. Any sane split lands there.
    let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap();
    let v = 25.0;
    let d = hev.demand(v, 0.0, 0.0);
    let o = hev
        .step(
            &d,
            &ControlInput {
                battery_current_a: 0.0,
                gear: 4,
                p_aux_w: 600.0,
            },
            1.0,
        )
        .unwrap();
    let g_per_mile = o.fuel_g * 1_609.344 / v;
    let mpg = 2_835.0 / g_per_mile;
    assert!((30.0..65.0).contains(&mpg), "steady-cruise mpg = {mpg}");
}
