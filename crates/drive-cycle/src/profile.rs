//! Segment-based construction of speed profiles.
//!
//! Standard cycles in [`crate::standard`] and the stochastic generator in
//! [`crate::microtrip`] both assemble cycles from idle / ramp / cruise
//! segments using [`ProfileBuilder`].

use crate::cycle::{DriveCycle, KMH_TO_MPS};
use crate::error::CycleError;

/// Incrementally builds a 1 Hz speed profile from idle, ramp, and cruise
/// segments.
///
/// The builder tracks the current speed; ramps start from it, cruises hold
/// it. Cruise segments superimpose a small sinusoidal ripple so synthetic
/// cycles exercise the same accelerate/coast micro-structure as measured
/// traces.
///
/// # Examples
///
/// ```
/// use drive_cycle::ProfileBuilder;
///
/// let cycle = ProfileBuilder::new("demo")
///     .idle(5.0)
///     .ramp_to(50.0, 10.0)
///     .cruise(20.0)
///     .ramp_to(0.0, 8.0)
///     .build()?;
/// assert!(cycle.duration_s() >= 43.0);
/// # Ok::<(), drive_cycle::CycleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    name: String,
    dt: f64,
    ripple_kmh: f64,
    ripple_period_s: f64,
    speeds_mps: Vec<f64>,
    current_kmh: f64,
    t: f64,
}

impl ProfileBuilder {
    /// Starts a new profile at rest, sampled at 1 Hz.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            dt: 1.0,
            ripple_kmh: 1.2,
            ripple_period_s: 11.0,
            speeds_mps: Vec::new(),
            current_kmh: 0.0,
            t: 0.0,
        }
    }

    /// Sets the cruise ripple amplitude in km/h (default 1.2). Zero gives
    /// perfectly flat cruises.
    pub fn ripple(mut self, amplitude_kmh: f64) -> Self {
        self.ripple_kmh = amplitude_kmh.max(0.0);
        self
    }

    /// Appends an idle (zero-speed) segment of the given duration.
    pub fn idle(mut self, secs: f64) -> Self {
        // hevlint::allow(float::lossy-cast, sample count: builder durations are author-provided small positive numbers; a negative rounds to zero samples)
        let n = (secs / self.dt).round() as usize;
        for _ in 0..n {
            self.speeds_mps.push(0.0);
            self.t += self.dt;
        }
        self.current_kmh = 0.0;
        self
    }

    /// Appends a linear ramp from the current speed to `to_kmh` over
    /// `secs` seconds.
    pub fn ramp_to(mut self, to_kmh: f64, secs: f64) -> Self {
        // hevlint::allow(float::lossy-cast, ramp sample count: bounded below by .max(1); durations are author-provided small positive numbers)
        let n = ((secs / self.dt).round() as usize).max(1);
        let from = self.current_kmh;
        for i in 1..=n {
            let f = i as f64 / n as f64;
            let v = from + f * (to_kmh - from);
            self.speeds_mps.push(v.max(0.0) * KMH_TO_MPS);
            self.t += self.dt;
        }
        self.current_kmh = to_kmh.max(0.0);
        self
    }

    /// Appends a cruise at the current speed for `secs` seconds, with the
    /// configured sinusoidal ripple.
    pub fn cruise(mut self, secs: f64) -> Self {
        // hevlint::allow(float::lossy-cast, sample count: builder durations are author-provided small positive numbers; a negative rounds to zero samples)
        let n = (secs / self.dt).round() as usize;
        let base = self.current_kmh;
        for _ in 0..n {
            let phase = 2.0 * std::f64::consts::PI * self.t / self.ripple_period_s;
            // Ripple dips below the nominal cruise speed so segment peaks
            // stay at the authored value.
            let v = base - self.ripple_kmh * (0.5 + 0.5 * phase.sin());
            self.speeds_mps.push(v.max(0.0) * KMH_TO_MPS);
            self.t += self.dt;
        }
        self
    }

    /// Appends a complete micro-trip: ramp up to `peak_kmh`, cruise, ramp
    /// down to rest, then idle.
    pub fn trip(
        self,
        peak_kmh: f64,
        up_secs: f64,
        cruise_secs: f64,
        down_secs: f64,
        idle_secs: f64,
    ) -> Self {
        self.ramp_to(peak_kmh, up_secs)
            .cruise(cruise_secs)
            .ramp_to(0.0, down_secs)
            .idle(idle_secs)
    }

    /// Finalizes the profile into a [`DriveCycle`].
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::Empty`] if no segments were added.
    pub fn build(self) -> Result<DriveCycle, CycleError> {
        DriveCycle::from_speeds_mps(self.name, self.dt, self.speeds_mps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CycleStats;

    #[test]
    fn empty_profile_is_rejected() {
        assert!(ProfileBuilder::new("e").build().is_err());
    }

    #[test]
    fn idle_emits_zeros() {
        let c = ProfileBuilder::new("i").idle(5.0).build().unwrap();
        assert_eq!(c.len(), 5);
        assert!(c.speeds_mps().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ramp_reaches_target() {
        let c = ProfileBuilder::new("r")
            .ramp_to(36.0, 10.0)
            .build()
            .unwrap();
        assert!((c.speed_at(9) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ramp_down_clamps_at_zero() {
        let c = ProfileBuilder::new("r")
            .ramp_to(20.0, 5.0)
            .ramp_to(-10.0, 5.0)
            .build()
            .unwrap();
        assert!(c.speeds_mps().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn cruise_holds_near_speed() {
        let c = ProfileBuilder::new("c")
            .ramp_to(50.0, 10.0)
            .cruise(30.0)
            .build()
            .unwrap();
        let s = CycleStats::of(&c);
        assert!(s.max_speed_kmh <= 50.0 + 1e-9);
        assert!(s.max_speed_kmh > 47.0);
    }

    #[test]
    fn zero_ripple_is_flat() {
        let c = ProfileBuilder::new("c")
            .ripple(0.0)
            .ramp_to(40.0, 8.0)
            .cruise(20.0)
            .build()
            .unwrap();
        let speeds = c.speeds_mps();
        let cruise = &speeds[8..];
        assert!(cruise.iter().all(|&v| (v - cruise[0]).abs() < 1e-9));
    }

    #[test]
    fn trip_ends_at_rest() {
        let c = ProfileBuilder::new("t")
            .trip(60.0, 12.0, 30.0, 10.0, 8.0)
            .build()
            .unwrap();
        assert_eq!(c.speed_at(c.len() - 1), 0.0);
        assert_eq!(c.len(), 60);
    }
}
