//! Summary statistics of driving cycles.

use crate::cycle::{DriveCycle, MPS_TO_KMH};
use serde::{Deserialize, Serialize};

/// Speed below which the vehicle is considered idle, in m/s (0.36 km/h).
pub const IDLE_THRESHOLD_MPS: f64 = 0.1;

/// Summary statistics of a [`DriveCycle`].
///
/// # Examples
///
/// ```
/// use drive_cycle::{DriveCycle, CycleStats};
///
/// let c = DriveCycle::from_speeds_mps("demo", 1.0, vec![0.0, 5.0, 10.0, 5.0, 0.0])?;
/// let stats = CycleStats::of(&c);
/// assert!(stats.max_speed_kmh > 0.0);
/// # Ok::<(), drive_cycle::CycleError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleStats {
    /// Total duration, seconds.
    pub duration_s: f64,
    /// Total distance, kilometers.
    pub distance_km: f64,
    /// Mean speed over the whole cycle (including idle), km/h.
    pub mean_speed_kmh: f64,
    /// Mean speed over moving samples only, km/h.
    pub mean_moving_speed_kmh: f64,
    /// Maximum speed, km/h.
    pub max_speed_kmh: f64,
    /// Maximum acceleration, m/s².
    pub max_accel_mps2: f64,
    /// Maximum deceleration (most negative acceleration), m/s².
    pub max_decel_mps2: f64,
    /// Root-mean-square acceleration, m/s².
    pub rms_accel_mps2: f64,
    /// Fraction of samples at idle (speed below [`IDLE_THRESHOLD_MPS`]).
    pub idle_fraction: f64,
    /// Number of stops: transitions from moving to idle.
    pub stop_count: usize,
    /// Fraction of samples spent accelerating (a > 0.05 m/s²).
    pub accel_fraction: f64,
    /// Fraction of samples spent braking (a < -0.05 m/s²).
    pub decel_fraction: f64,
    /// Mean positive specific power `v·a⁺` over moving samples, W/kg.
    /// A mass-independent proxy for cycle aggressiveness (cf. EPA "PKE").
    pub mean_positive_specific_power: f64,
}

impl CycleStats {
    /// Computes the statistics of a cycle.
    pub fn of(cycle: &DriveCycle) -> Self {
        let n = cycle.len();
        let dt = cycle.dt();
        let mut max_v: f64 = 0.0;
        let mut max_a = f64::NEG_INFINITY;
        let mut min_a = f64::INFINITY;
        let mut sum_a2 = 0.0;
        let mut idle = 0usize;
        let mut moving_sum = 0.0;
        let mut moving_n = 0usize;
        let mut stops = 0usize;
        let mut accel_n = 0usize;
        let mut decel_n = 0usize;
        let mut pos_power_sum = 0.0;
        let mut was_moving = false;
        for i in 0..n {
            let v = cycle.speed_at(i);
            let a = cycle.accel_at(i);
            max_v = max_v.max(v);
            max_a = max_a.max(a);
            min_a = min_a.min(a);
            sum_a2 += a * a;
            let is_moving = v > IDLE_THRESHOLD_MPS;
            if is_moving {
                moving_sum += v;
                moving_n += 1;
                pos_power_sum += v * a.max(0.0);
            } else {
                idle += 1;
                if was_moving {
                    stops += 1;
                }
            }
            was_moving = is_moving;
            if a > 0.05 {
                accel_n += 1;
            } else if a < -0.05 {
                decel_n += 1;
            }
        }
        let duration = cycle.duration_s();
        let distance_m = cycle.distance_m();
        Self {
            duration_s: duration,
            distance_km: distance_m / 1000.0,
            mean_speed_kmh: distance_m / duration * MPS_TO_KMH,
            mean_moving_speed_kmh: if moving_n > 0 {
                moving_sum / moving_n as f64 * MPS_TO_KMH
            } else {
                0.0
            },
            max_speed_kmh: max_v * MPS_TO_KMH,
            max_accel_mps2: if max_a.is_finite() { max_a } else { 0.0 },
            max_decel_mps2: if min_a.is_finite() { min_a } else { 0.0 },
            rms_accel_mps2: (sum_a2 / n as f64).sqrt(),
            idle_fraction: idle as f64 / n as f64,
            stop_count: stops,
            accel_fraction: accel_n as f64 / n as f64,
            decel_fraction: decel_n as f64 / n as f64,
            mean_positive_specific_power: if moving_n > 0 {
                pos_power_sum / moving_n as f64
            } else {
                0.0
            },
        }
        .quantize(dt)
    }

    // Round durations that are within floating noise of an integer number
    // of samples, keeping printed tables tidy.
    fn quantize(mut self, _dt: f64) -> Self {
        if (self.duration_s - self.duration_s.round()).abs() < 1e-9 {
            self.duration_s = self.duration_s.round();
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saw() -> DriveCycle {
        // 0 → 10 m/s → 0, then idle, then 0 → 5 → 0.
        let mut v = Vec::new();
        for i in 0..=10 {
            v.push(i as f64);
        }
        for i in (0..10).rev() {
            v.push(i as f64);
        }
        v.extend([0.0; 5]);
        for x in [2.5, 5.0, 2.5, 0.0] {
            v.push(x);
        }
        DriveCycle::from_speeds_mps("saw", 1.0, v).unwrap()
    }

    #[test]
    fn max_speed_is_peak() {
        let s = CycleStats::of(&saw());
        assert!((s.max_speed_kmh - 36.0).abs() < 1e-9);
    }

    #[test]
    fn idle_fraction_counts_zeros() {
        let s = CycleStats::of(&saw());
        assert!(s.idle_fraction > 0.15 && s.idle_fraction < 0.45);
    }

    #[test]
    fn two_stops_detected() {
        let s = CycleStats::of(&saw());
        assert_eq!(s.stop_count, 2);
    }

    #[test]
    fn mean_below_moving_mean() {
        let s = CycleStats::of(&saw());
        assert!(s.mean_speed_kmh < s.mean_moving_speed_kmh);
    }

    #[test]
    fn accel_and_decel_bounds() {
        let s = CycleStats::of(&saw());
        assert!((s.max_accel_mps2 - 2.5).abs() < 1e-9);
        assert!((s.max_decel_mps2 + 2.5).abs() < 1e-9);
        assert!(s.rms_accel_mps2 > 0.0);
    }

    #[test]
    fn fractions_in_unit_interval() {
        let s = CycleStats::of(&saw());
        for f in [s.idle_fraction, s.accel_fraction, s.decel_fraction] {
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn constant_cruise_has_no_stops() {
        let c = DriveCycle::from_speeds_mps("cruise", 1.0, vec![20.0; 60]).unwrap();
        let s = CycleStats::of(&c);
        assert_eq!(s.stop_count, 0);
        assert_eq!(s.idle_fraction, 0.0);
        assert!((s.mean_speed_kmh - 72.0).abs() < 1.5);
    }

    #[test]
    fn positive_specific_power_nonnegative() {
        let s = CycleStats::of(&saw());
        assert!(s.mean_positive_specific_power >= 0.0);
    }
}
