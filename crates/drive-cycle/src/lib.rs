//! Driving-cycle representation and generation for vehicle
//! energy-management studies.
//!
//! A [`DriveCycle`] is a uniformly sampled vehicle speed trace — the demand
//! side of a backward-looking powertrain simulation. This crate provides:
//!
//! * the [`DriveCycle`] type with interpolation, slicing, resampling and
//!   micro-trip segmentation ([`cycle`]);
//! * a library of standard cycles (UDDS, HWFET, SC03, NYCC, US06, and the
//!   EU OSCAR/MODEM urban cycles) calibrated to published statistics
//!   ([`standard`]);
//! * a seeded stochastic micro-trip generator for training-set diversity
//!   ([`microtrip`]);
//! * summary statistics ([`stats`]).
//!
//! # Examples
//!
//! ```
//! use drive_cycle::{CycleStats, StandardCycle};
//!
//! let udds = StandardCycle::Udds.cycle();
//! let stats = CycleStats::of(&udds);
//! assert!(stats.distance_km > 10.0);
//! assert!(stats.idle_fraction > 0.1); // city cycle: lots of stops
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cycle;
pub mod error;
pub mod io;
pub mod microtrip;
pub mod profile;
pub mod standard;
pub mod stats;

pub use cycle::{CyclePoint, DriveCycle, KMH_TO_MPS, MPS_TO_KMH};
pub use error::CycleError;
pub use microtrip::{MicroTripConfig, MicroTripGenerator};
pub use profile::ProfileBuilder;
pub use standard::{ParseCycleError, PublishedStats, StandardCycle};
pub use stats::{CycleStats, IDLE_THRESHOLD_MPS};
