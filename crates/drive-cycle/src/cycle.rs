//! The [`DriveCycle`] type: a uniformly sampled vehicle speed trace.

use crate::error::CycleError;
use serde::{Deserialize, Serialize};

/// Conversion factor from km/h to m/s.
pub const KMH_TO_MPS: f64 = 1.0 / 3.6;
/// Conversion factor from m/s to km/h.
pub const MPS_TO_KMH: f64 = 3.6;

/// A driving cycle: a uniformly sampled speed trace with an optional road
/// grade trace.
///
/// Speeds are stored in m/s at a fixed sample interval `dt` (seconds).
/// A cycle is the *demand* side of a backward-looking vehicle simulation:
/// the driver is assumed to track this trace exactly.
///
/// # Examples
///
/// ```
/// use drive_cycle::DriveCycle;
///
/// let cycle = DriveCycle::from_speeds_mps("demo", 1.0, vec![0.0, 2.0, 4.0, 2.0, 0.0])?;
/// assert_eq!(cycle.len(), 5);
/// assert!(cycle.distance_m() > 0.0);
/// # Ok::<(), drive_cycle::CycleError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveCycle {
    name: String,
    dt: f64,
    speed_mps: Vec<f64>,
    /// Road grade as a dimensionless slope (tan of the slope angle); empty
    /// means flat road.
    grade: Vec<f64>,
}

/// One sample of a driving cycle, with the finite-difference acceleration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CyclePoint {
    /// Time since cycle start, in seconds.
    pub time_s: f64,
    /// Vehicle speed, in m/s.
    pub speed_mps: f64,
    /// Vehicle acceleration, in m/s² (forward difference; zero at the last
    /// sample).
    pub accel_mps2: f64,
    /// Road grade (dimensionless slope).
    pub grade: f64,
}

impl DriveCycle {
    /// Creates a cycle from a speed trace in m/s on a flat road.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::Empty`] for an empty trace,
    /// [`CycleError::InvalidTimeStep`] for a non-positive or non-finite
    /// `dt`, and [`CycleError::InvalidSpeed`] for negative or non-finite
    /// samples.
    pub fn from_speeds_mps(
        name: impl Into<String>,
        dt: f64,
        speed_mps: Vec<f64>,
    ) -> Result<Self, CycleError> {
        Self::with_grade(name, dt, speed_mps, Vec::new())
    }

    /// Creates a cycle from a speed trace in km/h on a flat road.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DriveCycle::from_speeds_mps`].
    pub fn from_speeds_kmh(
        name: impl Into<String>,
        dt: f64,
        speed_kmh: Vec<f64>,
    ) -> Result<Self, CycleError> {
        let speeds = speed_kmh.into_iter().map(|v| v * KMH_TO_MPS).collect();
        Self::from_speeds_mps(name, dt, speeds)
    }

    /// Creates a cycle with an explicit road-grade trace.
    ///
    /// An empty `grade` vector means a flat road; otherwise it must have
    /// the same length as the speed trace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DriveCycle::from_speeds_mps`], plus
    /// [`CycleError::GradeLengthMismatch`] and
    /// [`CycleError::InvalidGrade`].
    pub fn with_grade(
        name: impl Into<String>,
        dt: f64,
        speed_mps: Vec<f64>,
        grade: Vec<f64>,
    ) -> Result<Self, CycleError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(CycleError::InvalidTimeStep(dt));
        }
        if speed_mps.is_empty() {
            return Err(CycleError::Empty);
        }
        for (index, &value) in speed_mps.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(CycleError::InvalidSpeed { index, value });
            }
        }
        if !grade.is_empty() && grade.len() != speed_mps.len() {
            return Err(CycleError::GradeLengthMismatch {
                speeds: speed_mps.len(),
                grades: grade.len(),
            });
        }
        for (index, &value) in grade.iter().enumerate() {
            if !value.is_finite() {
                return Err(CycleError::InvalidGrade { index, value });
            }
        }
        Ok(Self {
            name: name.into(),
            dt,
            speed_mps,
            grade,
        })
    }

    /// Creates a cycle by linearly interpolating `(time_s, speed_kmh)` knot
    /// points at a 1-sample-per-`dt` rate.
    ///
    /// Knot times must be strictly increasing and start at zero (a leading
    /// zero-time knot is required so the trace is defined from t = 0).
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::NonMonotonicKnots`] if knot times are not
    /// strictly increasing, plus the conditions of
    /// [`DriveCycle::from_speeds_mps`].
    pub fn from_knots_kmh(
        name: impl Into<String>,
        dt: f64,
        knots: &[(f64, f64)],
    ) -> Result<Self, CycleError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(CycleError::InvalidTimeStep(dt));
        }
        if knots.is_empty() {
            return Err(CycleError::Empty);
        }
        for i in 1..knots.len() {
            if knots[i].0 <= knots[i - 1].0 {
                return Err(CycleError::NonMonotonicKnots { index: i });
            }
        }
        let t_end = knots[knots.len() - 1].0;
        // hevlint::allow(float::lossy-cast, sample count: t_end and dt are validated positive and finite, so the floor is a small non-negative integer)
        let n = (t_end / dt).floor() as usize + 1;
        let mut speeds = Vec::with_capacity(n);
        let mut k = 0usize;
        for i in 0..n {
            let t = i as f64 * dt;
            while k + 1 < knots.len() && knots[k + 1].0 < t {
                k += 1;
            }
            let v = if t <= knots[0].0 {
                knots[0].1
            } else if k + 1 >= knots.len() {
                knots[knots.len() - 1].1
            } else {
                let (t0, v0) = knots[k];
                let (t1, v1) = knots[k + 1];
                let f = ((t - t0) / (t1 - t0)).clamp(0.0, 1.0);
                v0 + f * (v1 - v0)
            };
            speeds.push(v * KMH_TO_MPS);
        }
        Self::from_speeds_mps(name, dt, speeds)
    }

    /// The cycle name (e.g. `"UDDS"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sample interval in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.speed_mps.len()
    }

    /// Whether the cycle has no samples. Never true for a constructed
    /// cycle (construction rejects empty traces), but present for
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.speed_mps.is_empty()
    }

    /// Total duration in seconds (`len * dt`).
    pub fn duration_s(&self) -> f64 {
        self.len() as f64 * self.dt
    }

    /// The speed trace, in m/s.
    pub fn speeds_mps(&self) -> &[f64] {
        &self.speed_mps
    }

    /// Speed at sample `i`, in m/s.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn speed_at(&self, i: usize) -> f64 {
        self.speed_mps[i]
    }

    /// Road grade at sample `i` (zero on flat cycles).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds on a cycle with an explicit grade
    /// trace.
    pub fn grade_at(&self, i: usize) -> f64 {
        if self.grade.is_empty() {
            0.0
        } else {
            self.grade[i]
        }
    }

    /// Forward-difference acceleration at sample `i`, in m/s²; zero at the
    /// last sample.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn accel_at(&self, i: usize) -> f64 {
        if i + 1 < self.speed_mps.len() {
            (self.speed_mps[i + 1] - self.speed_mps[i]) / self.dt
        } else {
            0.0
        }
    }

    /// Total distance travelled, in meters (trapezoidal integral of speed).
    pub fn distance_m(&self) -> f64 {
        let mut d = 0.0;
        for i in 1..self.speed_mps.len() {
            d += 0.5 * (self.speed_mps[i] + self.speed_mps[i - 1]) * self.dt;
        }
        d
    }

    /// Iterates over [`CyclePoint`] samples.
    pub fn points(&self) -> Points<'_> {
        Points { cycle: self, i: 0 }
    }

    /// Returns a sub-cycle covering samples `start..end`.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::InvalidRange`] if the range is inverted, empty
    /// or out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> Result<Self, CycleError> {
        if start >= end || end > self.speed_mps.len() {
            return Err(CycleError::InvalidRange {
                start,
                end,
                len: self.speed_mps.len(),
            });
        }
        let grade = if self.grade.is_empty() {
            Vec::new()
        } else {
            self.grade[start..end].to_vec()
        };
        Self::with_grade(
            format!("{}[{start}..{end}]", self.name),
            self.dt,
            self.speed_mps[start..end].to_vec(),
            grade,
        )
    }

    /// Concatenates another cycle after this one, returning a new cycle.
    ///
    /// The other cycle is resampled to this cycle's `dt` if needed.
    pub fn concat(&self, other: &DriveCycle) -> Self {
        let other = if (other.dt - self.dt).abs() > 1e-12 {
            other.resample(self.dt)
        } else {
            other.clone()
        };
        let mut speeds = self.speed_mps.clone();
        speeds.extend_from_slice(&other.speed_mps);
        let grade = if self.grade.is_empty() && other.grade.is_empty() {
            Vec::new()
        } else {
            let mut g: Vec<f64> = if self.grade.is_empty() {
                vec![0.0; self.speed_mps.len()]
            } else {
                self.grade.clone()
            };
            if other.grade.is_empty() {
                g.extend(std::iter::repeat_n(0.0, other.speed_mps.len()));
            } else {
                g.extend_from_slice(&other.grade);
            }
            g
        };
        Self {
            name: format!("{}+{}", self.name, other.name),
            dt: self.dt,
            speed_mps: speeds,
            grade,
        }
    }

    /// Returns a copy resampled to a new sample interval via linear
    /// interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `new_dt` is not finite and positive.
    pub fn resample(&self, new_dt: f64) -> Self {
        assert!(
            new_dt.is_finite() && new_dt > 0.0,
            "resample dt must be positive"
        );
        let t_end = (self.speed_mps.len() - 1) as f64 * self.dt;
        // hevlint::allow(float::lossy-cast, resample count: t_end and new_dt are validated positive and finite, so the floor is a small non-negative integer)
        let n = (t_end / new_dt).floor() as usize + 1;
        let lerp = |trace: &[f64], t: f64| -> f64 {
            let x = t / self.dt;
            // hevlint::allow(float::lossy-cast, interpolation index: x is non-negative by construction and bounded by .min(len-1))
            let i = (x.floor() as usize).min(trace.len() - 1);
            let j = (i + 1).min(trace.len() - 1);
            let f = x - i as f64;
            trace[i] * (1.0 - f) + trace[j] * f
        };
        let speeds: Vec<f64> = (0..n)
            .map(|i| lerp(&self.speed_mps, i as f64 * new_dt))
            .collect();
        let grade: Vec<f64> = if self.grade.is_empty() {
            Vec::new()
        } else {
            (0..n)
                .map(|i| lerp(&self.grade, i as f64 * new_dt))
                .collect()
        };
        Self {
            name: self.name.clone(),
            dt: new_dt,
            speed_mps: speeds,
            grade,
        }
    }

    /// Returns a copy with all speeds multiplied by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scale_speed(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be non-negative"
        );
        Self {
            name: self.name.clone(),
            dt: self.dt,
            speed_mps: self.speed_mps.iter().map(|v| v * factor).collect(),
            grade: self.grade.clone(),
        }
    }

    /// Returns a copy smoothed with a centered moving average of the given
    /// odd window length (a window of 1 returns an identical cycle).
    pub fn smooth(&self, window: usize) -> Self {
        let w = window.max(1) | 1; // force odd
        let half = w / 2;
        let n = self.speed_mps.len();
        let mut speeds = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            let sum: f64 = self.speed_mps[lo..hi].iter().sum();
            speeds.push(sum / (hi - lo) as f64);
        }
        Self {
            name: self.name.clone(),
            dt: self.dt,
            speed_mps: speeds,
            grade: self.grade.clone(),
        }
    }

    /// Returns a copy with a synthetic rolling-hills grade profile: a
    /// sum of two sinusoids in *distance* (so hills have physical length
    /// regardless of speed), with the given peak grade.
    ///
    /// # Panics
    ///
    /// Panics if `peak_grade` is negative or not finite, or
    /// `hill_length_m` is not positive.
    pub fn with_rolling_grade(&self, peak_grade: f64, hill_length_m: f64) -> Self {
        assert!(
            peak_grade.is_finite() && peak_grade >= 0.0,
            "peak grade must be >= 0"
        );
        assert!(hill_length_m > 0.0, "hill length must be positive");
        let mut distance = 0.0;
        let mut grade = Vec::with_capacity(self.speed_mps.len());
        for (i, &v) in self.speed_mps.iter().enumerate() {
            if i > 0 {
                distance += 0.5 * (v + self.speed_mps[i - 1]) * self.dt;
            }
            let x = distance / hill_length_m * std::f64::consts::TAU;
            grade.push(peak_grade * (0.7 * x.sin() + 0.3 * (2.3 * x).sin()));
        }
        Self {
            name: format!("{}+hills", self.name),
            dt: self.dt,
            speed_mps: self.speed_mps.clone(),
            grade,
        }
    }

    /// Returns a perturbed copy: speeds are modulated by a smooth,
    /// zero-mean multiplicative noise of relative amplitude
    /// `amplitude` (e.g. 0.05 for ±5 %), deterministic in `seed`.
    ///
    /// Real drivers never reproduce a cycle exactly; controllers trained
    /// on perturbed replicas of a cycle see the non-stationarity the
    /// underlying paper motivates its prediction state with.
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is negative or not finite.
    pub fn perturbed(&self, seed: u64, amplitude: f64) -> Self {
        assert!(
            amplitude.is_finite() && amplitude >= 0.0,
            "amplitude must be non-negative"
        );
        // Smooth noise: an Ornstein-Uhlenbeck-like random walk from a
        // deterministic xorshift stream, low-pass filtered.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut walk = 0.0f64;
        let speeds = self
            .speed_mps
            .iter()
            .map(|&v| {
                walk = 0.9 * walk + 0.3 * next();
                let factor = (1.0 + amplitude * walk.clamp(-1.0, 1.0)).max(0.0);
                // Idle samples stay idle: stops are part of the route.
                if v <= 0.1 {
                    v
                } else {
                    v * factor
                }
            })
            .collect();
        Self {
            name: format!("{}~{seed}", self.name),
            dt: self.dt,
            speed_mps: speeds,
            grade: self.grade.clone(),
        }
    }

    /// The elevation profile implied by the grade trace: cumulative
    /// `∫ grade · v dt`, meters, one value per sample (starting at 0).
    /// All zeros for a flat cycle.
    pub fn elevation_profile_m(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        let mut z = 0.0;
        for i in 0..self.len() {
            out.push(z);
            z += self.grade_at(i) * self.speed_at(i) * self.dt;
        }
        out
    }

    /// Splits the cycle into micro-trips: maximal segments separated by
    /// idle periods (speed below `idle_threshold_mps`).
    ///
    /// Each returned range covers one driving segment including the idle
    /// samples that follow it.
    pub fn microtrip_ranges(&self, idle_threshold_mps: f64) -> Vec<std::ops::Range<usize>> {
        let mut ranges = Vec::new();
        let n = self.speed_mps.len();
        let mut start = 0usize;
        let mut seen_motion = false;
        for i in 0..n {
            let moving = self.speed_mps[i] > idle_threshold_mps;
            if moving {
                seen_motion = true;
            }
            // A trip ends when motion has been seen and the next sample
            // begins a new acceleration out of idle.
            if seen_motion && !moving && i + 1 < n && self.speed_mps[i + 1] > idle_threshold_mps {
                ranges.push(start..i + 1);
                start = i + 1;
                seen_motion = false;
            }
        }
        if start < n {
            ranges.push(start..n);
        }
        ranges
    }
}

/// Iterator over the samples of a [`DriveCycle`], created by
/// [`DriveCycle::points`].
#[derive(Debug, Clone)]
pub struct Points<'a> {
    cycle: &'a DriveCycle,
    i: usize,
}

impl Iterator for Points<'_> {
    type Item = CyclePoint;

    fn next(&mut self) -> Option<CyclePoint> {
        if self.i >= self.cycle.len() {
            return None;
        }
        let i = self.i;
        self.i += 1;
        Some(CyclePoint {
            time_s: i as f64 * self.cycle.dt(),
            speed_mps: self.cycle.speed_at(i),
            accel_mps2: self.cycle.accel_at(i),
            grade: self.cycle.grade_at(i),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.cycle.len() - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Points<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> DriveCycle {
        DriveCycle::from_speeds_mps("ramp", 1.0, vec![0.0, 1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            DriveCycle::from_speeds_mps("x", 1.0, vec![]).unwrap_err(),
            CycleError::Empty
        );
    }

    #[test]
    fn rejects_negative_speed() {
        let err = DriveCycle::from_speeds_mps("x", 1.0, vec![1.0, -0.5]).unwrap_err();
        assert_eq!(
            err,
            CycleError::InvalidSpeed {
                index: 1,
                value: -0.5
            }
        );
    }

    #[test]
    fn rejects_nan_speed() {
        let err = DriveCycle::from_speeds_mps("x", 1.0, vec![f64::NAN]).unwrap_err();
        assert!(matches!(err, CycleError::InvalidSpeed { index: 0, .. }));
    }

    #[test]
    fn rejects_bad_dt() {
        for dt in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                DriveCycle::from_speeds_mps("x", dt, vec![1.0]).unwrap_err(),
                CycleError::InvalidTimeStep(_)
            ));
        }
    }

    #[test]
    fn rejects_grade_length_mismatch() {
        let err = DriveCycle::with_grade("x", 1.0, vec![1.0, 2.0], vec![0.0]).unwrap_err();
        assert_eq!(
            err,
            CycleError::GradeLengthMismatch {
                speeds: 2,
                grades: 1
            }
        );
    }

    #[test]
    fn kmh_conversion_roundtrip() {
        let c = DriveCycle::from_speeds_kmh("x", 1.0, vec![36.0]).unwrap();
        assert!((c.speed_at(0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn distance_of_constant_speed() {
        let c = DriveCycle::from_speeds_mps("c", 1.0, vec![10.0; 11]).unwrap();
        assert!((c.distance_m() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn accel_forward_difference() {
        let c = ramp();
        assert!((c.accel_at(0) - 1.0).abs() < 1e-12);
        assert_eq!(c.accel_at(4), 0.0);
    }

    #[test]
    fn duration_matches_len() {
        let c = ramp();
        assert!((c.duration_s() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn knot_interpolation_hits_knots() {
        let c = DriveCycle::from_knots_kmh("k", 1.0, &[(0.0, 0.0), (10.0, 36.0)]).unwrap();
        assert_eq!(c.len(), 11);
        assert!((c.speed_at(10) - 10.0).abs() < 1e-9);
        assert!((c.speed_at(5) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn knots_must_increase() {
        let err = DriveCycle::from_knots_kmh("k", 1.0, &[(0.0, 0.0), (0.0, 10.0)]).unwrap_err();
        assert_eq!(err, CycleError::NonMonotonicKnots { index: 1 });
    }

    #[test]
    fn slice_and_concat_preserve_samples() {
        let c = ramp();
        let a = c.slice(0, 2).unwrap();
        let b = c.slice(2, 5).unwrap();
        let joined = a.concat(&b);
        assert_eq!(joined.speeds_mps(), c.speeds_mps());
    }

    #[test]
    fn slice_rejects_bad_ranges() {
        let c = ramp();
        assert!(c.slice(3, 3).is_err());
        assert!(c.slice(4, 2).is_err());
        assert!(c.slice(0, 6).is_err());
    }

    #[test]
    fn resample_halves_and_doubles() {
        let c = ramp();
        let fine = c.resample(0.5);
        assert_eq!(fine.len(), 9);
        assert!((fine.speed_at(1) - 0.5).abs() < 1e-12);
        let coarse = c.resample(2.0);
        assert_eq!(coarse.len(), 3);
        assert!((coarse.speed_at(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scale_speed_scales_distance() {
        let c = ramp();
        let d0 = c.distance_m();
        let scaled = c.scale_speed(2.0);
        assert!((scaled.distance_m() - 2.0 * d0).abs() < 1e-9);
    }

    #[test]
    fn smooth_preserves_length_and_reduces_peaks() {
        let c = DriveCycle::from_speeds_mps("spiky", 1.0, vec![0.0, 10.0, 0.0, 10.0, 0.0]).unwrap();
        let s = c.smooth(3);
        assert_eq!(s.len(), c.len());
        let max_s = s.speeds_mps().iter().cloned().fold(0.0, f64::max);
        assert!(max_s < 10.0);
    }

    #[test]
    fn points_iterator_is_exact_size() {
        let c = ramp();
        let pts: Vec<_> = c.points().collect();
        assert_eq!(pts.len(), 5);
        assert!((pts[2].time_s - 2.0).abs() < 1e-12);
        assert!((pts[2].speed_mps - 2.0).abs() < 1e-12);
    }

    #[test]
    fn microtrips_split_on_idle() {
        let speeds = vec![0.0, 5.0, 5.0, 0.0, 0.0, 6.0, 6.0, 0.0];
        let c = DriveCycle::from_speeds_mps("mt", 1.0, speeds).unwrap();
        let ranges = c.microtrip_ranges(0.1);
        assert_eq!(ranges.len(), 2);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, c.len());
    }

    #[test]
    fn rolling_grade_bounded_and_zero_mean_ish() {
        let c = DriveCycle::from_speeds_mps("flat", 1.0, vec![15.0; 600]).unwrap();
        let hilly = c.with_rolling_grade(0.04, 800.0);
        let grades: Vec<f64> = (0..hilly.len()).map(|i| hilly.grade_at(i)).collect();
        assert!(grades.iter().all(|g| g.abs() <= 0.04 + 1e-12));
        let mean: f64 = grades.iter().sum::<f64>() / grades.len() as f64;
        assert!(mean.abs() < 0.01, "mean grade {mean}");
        assert!(grades.iter().any(|&g| g > 0.01));
        assert!(grades.iter().any(|&g| g < -0.01));
    }

    #[test]
    fn elevation_profile_integrates_grade() {
        // Constant 10 m/s on a constant 5 % grade for 10 s climbs 5 m.
        let c = DriveCycle::with_grade("climb", 1.0, vec![10.0; 11], vec![0.05; 11]).unwrap();
        let z = c.elevation_profile_m();
        assert_eq!(z[0], 0.0);
        assert!((z[10] - 5.0).abs() < 1e-9, "final elevation {}", z[10]);
    }

    #[test]
    fn flat_cycle_elevation_is_zero() {
        let z = ramp().elevation_profile_m();
        assert!(z.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn rolling_grade_elevation_is_bounded() {
        let c = DriveCycle::from_speeds_mps("f", 1.0, vec![15.0; 600]).unwrap();
        let hilly = c.with_rolling_grade(0.05, 700.0);
        let z = hilly.elevation_profile_m();
        let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = z.iter().cloned().fold(f64::INFINITY, f64::min);
        // Hills of ~700 m length at ≤5 % grade swing a few meters.
        assert!(max - min > 1.0 && max - min < 40.0, "swing {}", max - min);
    }

    #[test]
    fn rolling_grade_keeps_speeds() {
        let c = ramp();
        let hilly = c.with_rolling_grade(0.05, 500.0);
        assert_eq!(hilly.speeds_mps(), c.speeds_mps());
        assert_eq!(hilly.name(), "ramp+hills");
    }

    #[test]
    fn perturbed_is_seed_deterministic() {
        let c = ramp();
        assert_eq!(c.perturbed(5, 0.05), c.perturbed(5, 0.05));
        assert_ne!(c.perturbed(5, 0.05), c.perturbed(6, 0.05));
    }

    #[test]
    fn perturbed_zero_amplitude_is_identity_in_speeds() {
        let c = ramp();
        assert_eq!(c.perturbed(1, 0.0).speeds_mps(), c.speeds_mps());
    }

    #[test]
    fn perturbed_stays_close_and_nonnegative() {
        let c = DriveCycle::from_speeds_mps("base", 1.0, vec![10.0; 200]).unwrap();
        let p = c.perturbed(9, 0.05);
        for (&a, &b) in c.speeds_mps().iter().zip(p.speeds_mps()) {
            assert!(b >= 0.0);
            assert!((b - a).abs() <= a * 0.05 + 1e-9);
        }
        // And it actually changes something.
        assert_ne!(c.speeds_mps(), p.speeds_mps());
    }

    #[test]
    fn perturbed_preserves_idle() {
        let c = DriveCycle::from_speeds_mps("idle", 1.0, vec![0.0, 0.0, 10.0, 0.0]).unwrap();
        let p = c.perturbed(3, 0.1);
        assert_eq!(p.speed_at(0), 0.0);
        assert_eq!(p.speed_at(3), 0.0);
    }

    #[test]
    fn grade_defaults_to_zero() {
        let c = ramp();
        assert_eq!(c.grade_at(3), 0.0);
    }

    #[test]
    fn with_grade_roundtrips() {
        let c = DriveCycle::with_grade("g", 1.0, vec![1.0, 2.0], vec![0.01, -0.02]).unwrap();
        assert!((c.grade_at(1) + 0.02).abs() < 1e-12);
    }
}
