//! CSV import/export of driving cycles.
//!
//! The format matches the common dynamometer-trace convention: a header
//! line, then one `time_s,speed_kmh[,grade]` row per sample. Time stamps
//! must be uniformly spaced.

use crate::cycle::{DriveCycle, MPS_TO_KMH};
use crate::error::CycleError;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Serializes a cycle to CSV (`time_s,speed_kmh[,grade]`).
pub fn to_csv_string(cycle: &DriveCycle) -> String {
    // hevlint::allow(float::eq, exact sentinel: any stored grade bit-different from 0.0 must round-trip through the CSV grade column)
    let has_grade = (0..cycle.len()).any(|i| cycle.grade_at(i) != 0.0);
    let mut out = String::with_capacity(cycle.len() * 16);
    out.push_str(if has_grade {
        "time_s,speed_kmh,grade\n"
    } else {
        "time_s,speed_kmh\n"
    });
    for i in 0..cycle.len() {
        let t = i as f64 * cycle.dt();
        let v = cycle.speed_at(i) * MPS_TO_KMH;
        if has_grade {
            let _ = writeln!(out, "{t},{v},{}", cycle.grade_at(i));
        } else {
            let _ = writeln!(out, "{t},{v}");
        }
    }
    out
}

/// Parses a cycle from CSV text (see [`to_csv_string`] for the format).
///
/// Tolerant of real-world exports: a UTF-8 byte-order mark, CRLF line
/// endings, blank lines, and a header on the first non-empty line are
/// all accepted.
///
/// # Errors
///
/// Returns [`CycleError::ParseCsv`] for malformed rows and for
/// duplicate, non-monotonic, or non-uniform time stamps (each pointing
/// at the offending 1-based line), plus the usual construction errors.
pub fn from_csv_str(name: impl Into<String>, text: &str) -> Result<DriveCycle, CycleError> {
    // A UTF-8 BOM would otherwise glue itself to the header's first
    // character and defeat the header check below.
    let text = text.strip_prefix('\u{feff}').unwrap_or(text);
    // (1-based line, time) per sample, so time-stamp diagnostics can
    // point at the exact offending row.
    let mut times: Vec<(usize, f64)> = Vec::new();
    let mut speeds_kmh = Vec::new();
    let mut grades = Vec::new();
    let mut saw_first = false;
    for (line_idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // Skip a header on the first non-empty line.
        if !saw_first {
            saw_first = true;
            if trimmed.chars().next().is_some_and(|c| c.is_alphabetic()) {
                continue;
            }
        }
        let line_no = line_idx + 1;
        let mut fields = trimmed.split(',');
        let parse = |s: Option<&str>, what: &str| -> Result<f64, CycleError> {
            s.and_then(|v| v.trim().parse::<f64>().ok())
                .ok_or_else(|| CycleError::ParseCsv {
                    line: line_no,
                    reason: format!("missing or invalid {what}"),
                })
        };
        times.push((line_no, parse(fields.next(), "time")?));
        speeds_kmh.push(parse(fields.next(), "speed")?);
        if let Some(g) = fields.next() {
            grades.push(parse(Some(g), "grade")?);
        }
    }
    if times.is_empty() {
        return Err(CycleError::Empty);
    }
    // Reject duplicate and non-monotonic stamps before judging spacing,
    // so the error names the actual defect rather than "non-uniform".
    for w in times.windows(2) {
        let (line, t) = w[1];
        let (_, prev) = w[0];
        if (t - prev).abs() <= 1e-9 {
            return Err(CycleError::ParseCsv {
                line,
                reason: format!("duplicate time stamp {t}"),
            });
        }
        if t < prev {
            return Err(CycleError::ParseCsv {
                line,
                reason: format!("non-monotonic time stamp {t} after {prev}"),
            });
        }
    }
    let dt = if times.len() >= 2 {
        times[1].1 - times[0].1
    } else {
        1.0
    };
    for w in times.windows(2) {
        let (line, t) = w[1];
        let (_, prev) = w[0];
        if ((t - prev) - dt).abs() > 1e-6 {
            return Err(CycleError::ParseCsv {
                line,
                reason: format!(
                    "time stamps are not uniformly spaced: step {} differs from {dt}",
                    t - prev
                ),
            });
        }
    }
    let speeds_mps = speeds_kmh.into_iter().map(|v| v / MPS_TO_KMH).collect();
    if grades.is_empty() {
        DriveCycle::from_speeds_mps(name, dt, speeds_mps)
    } else if grades.len() == times.len() {
        DriveCycle::with_grade(name, dt, speeds_mps, grades)
    } else {
        Err(CycleError::ParseCsv {
            line: 0,
            reason: "grade column present on only some rows".to_string(),
        })
    }
}

/// Writes a cycle to a CSV file.
///
/// # Errors
///
/// Returns [`CycleError::Io`] on filesystem errors.
pub fn write_csv(cycle: &DriveCycle, path: impl AsRef<Path>) -> Result<(), CycleError> {
    fs::write(path, to_csv_string(cycle)).map_err(|e| CycleError::Io {
        reason: e.to_string(),
    })
}

/// Reads a cycle from a CSV file; the cycle is named after the file stem.
///
/// # Errors
///
/// Returns [`CycleError::Io`] on filesystem errors, plus the conditions
/// of [`from_csv_str`].
pub fn read_csv(path: impl AsRef<Path>) -> Result<DriveCycle, CycleError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "cycle".to_string());
    let text = fs::read_to_string(path).map_err(|e| CycleError::Io {
        reason: e.to_string(),
    })?;
    from_csv_str(name, &text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::StandardCycle;

    #[test]
    fn csv_roundtrip_flat() {
        let cycle = StandardCycle::Oscar.cycle();
        let csv = to_csv_string(&cycle);
        let back = from_csv_str("OSCAR", &csv).unwrap();
        assert_eq!(back.len(), cycle.len());
        for i in 0..cycle.len() {
            assert!(
                (back.speed_at(i) - cycle.speed_at(i)).abs() < 1e-9,
                "sample {i}"
            );
        }
    }

    #[test]
    fn csv_roundtrip_with_grade() {
        let cycle =
            DriveCycle::with_grade("hill", 1.0, vec![5.0, 6.0, 7.0], vec![0.02, 0.02, -0.01])
                .unwrap();
        let csv = to_csv_string(&cycle);
        assert!(csv.starts_with("time_s,speed_kmh,grade"));
        let back = from_csv_str("hill", &csv).unwrap();
        assert!((back.grade_at(2) + 0.01).abs() < 1e-12);
    }

    #[test]
    fn parses_headerless_csv() {
        let back = from_csv_str("x", "0,36\n1,36\n2,36\n").unwrap();
        assert_eq!(back.len(), 3);
        assert!((back.speed_at(0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_garbage_rows() {
        let err = from_csv_str("x", "time_s,speed_kmh\n0,ten\n").unwrap_err();
        assert!(matches!(err, CycleError::ParseCsv { line: 2, .. }));
    }

    #[test]
    fn rejects_non_uniform_times() {
        let err = from_csv_str("x", "0,10\n1,10\n3,10\n").unwrap_err();
        assert!(matches!(err, CycleError::ParseCsv { line: 3, .. }));
    }

    #[test]
    fn accepts_utf8_bom_before_header() {
        // A BOM'd header used to mis-parse: the header check saw '\u{feff}'
        // instead of 't' and fell through to field parsing.
        let back = from_csv_str("x", "\u{feff}time_s,speed_kmh\n0,36\n1,36\n").unwrap();
        assert_eq!(back.len(), 2);
        assert!((back.speed_at(0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn accepts_crlf_line_endings() {
        let back = from_csv_str("x", "time_s,speed_kmh\r\n0,36\r\n1,36\r\n2,36\r\n").unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn accepts_header_after_blank_lines() {
        let back = from_csv_str("x", "\n\ntime_s,speed_kmh\n0,36\n1,36\n").unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn rejects_duplicate_time_stamp_with_line() {
        let err = from_csv_str("x", "time_s,speed_kmh\n0,10\n1,10\n1,11\n2,12\n").unwrap_err();
        let CycleError::ParseCsv { line, reason } = err else {
            panic!("expected ParseCsv, got {err:?}");
        };
        assert_eq!(line, 4);
        assert!(reason.contains("duplicate"), "reason: {reason}");
    }

    #[test]
    fn rejects_non_monotonic_time_stamp_with_line() {
        let err = from_csv_str("x", "0,10\n1,10\n0.5,11\n").unwrap_err();
        let CycleError::ParseCsv { line, reason } = err else {
            panic!("expected ParseCsv, got {err:?}");
        };
        assert_eq!(line, 3);
        assert!(reason.contains("non-monotonic"), "reason: {reason}");
    }

    #[test]
    fn rejects_empty_text() {
        assert_eq!(
            from_csv_str("x", "time_s,speed_kmh\n").unwrap_err(),
            CycleError::Empty
        );
    }

    #[test]
    fn file_roundtrip() {
        let cycle = StandardCycle::Nycc.cycle();
        let path = std::env::temp_dir().join("drive_cycle_io_test.csv");
        write_csv(&cycle, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.name(), "drive_cycle_io_test");
        assert_eq!(back.len(), cycle.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_csv("/nonexistent/definitely/missing.csv").unwrap_err(),
            CycleError::Io { .. }
        ));
    }
}
