//! Library of standard driving cycles.
//!
//! These are hand-authored piecewise-linear approximations of the official
//! traces, calibrated to the published summary statistics of each cycle
//! (duration, distance, mean and maximum speed, idle fraction, number of
//! stops). They are **not** the official second-by-second data — see
//! `DESIGN.md` ("Substitutions") for why this preserves the behaviour the
//! DAC'15 experiments depend on. [`StandardCycle::published_stats`] returns
//! the official targets so tests can assert calibration.

use crate::cycle::DriveCycle;
use crate::profile::ProfileBuilder;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Published reference statistics of an official driving cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PublishedStats {
    /// Official duration, seconds.
    pub duration_s: f64,
    /// Official distance, kilometers.
    pub distance_km: f64,
    /// Official mean speed, km/h.
    pub mean_speed_kmh: f64,
    /// Official maximum speed, km/h.
    pub max_speed_kmh: f64,
}

/// A standard driving cycle identifier.
///
/// # Examples
///
/// ```
/// use drive_cycle::StandardCycle;
///
/// let udds = StandardCycle::Udds.cycle();
/// assert_eq!(udds.name(), "UDDS");
/// assert!(udds.duration_s() > 1300.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StandardCycle {
    /// EPA Urban Dynamometer Driving Schedule ("city cycle").
    Udds,
    /// EPA Highway Fuel Economy Test.
    Hwfet,
    /// EPA SC03 air-conditioning supplemental cycle.
    Sc03,
    /// New York City Cycle: dense low-speed urban traffic.
    Nycc,
    /// EPA US06 aggressive/high-speed supplemental cycle.
    Us06,
    /// OSCAR project (EU) urban composite cycle.
    Oscar,
    /// MODEM project (EU) urban cycle.
    ModemUrban,
    /// WLTC class-3 (Worldwide harmonized Light vehicles Test Cycle):
    /// low/medium/high/extra-high phases.
    Wltc,
}

impl StandardCycle {
    /// All standard cycles, in a stable order.
    pub fn all() -> [StandardCycle; 8] {
        [
            StandardCycle::Udds,
            StandardCycle::Hwfet,
            StandardCycle::Sc03,
            StandardCycle::Nycc,
            StandardCycle::Us06,
            StandardCycle::Oscar,
            StandardCycle::ModemUrban,
            StandardCycle::Wltc,
        ]
    }

    /// The four cycles used by the paper's evaluation (§5): OSCAR, UDDS,
    /// SC03, HWFET.
    pub fn paper_set() -> [StandardCycle; 4] {
        [
            StandardCycle::Oscar,
            StandardCycle::Udds,
            StandardCycle::Sc03,
            StandardCycle::Hwfet,
        ]
    }

    /// The cycle's conventional name.
    pub fn name(self) -> &'static str {
        match self {
            StandardCycle::Udds => "UDDS",
            StandardCycle::Hwfet => "HWFET",
            StandardCycle::Sc03 => "SC03",
            StandardCycle::Nycc => "NYCC",
            StandardCycle::Us06 => "US06",
            StandardCycle::Oscar => "OSCAR",
            StandardCycle::ModemUrban => "MODEM",
            StandardCycle::Wltc => "WLTC",
        }
    }

    /// Published reference statistics of the official trace.
    pub fn published_stats(self) -> PublishedStats {
        match self {
            StandardCycle::Udds => PublishedStats {
                duration_s: 1369.0,
                distance_km: 11.99,
                mean_speed_kmh: 31.5,
                max_speed_kmh: 91.2,
            },
            StandardCycle::Hwfet => PublishedStats {
                duration_s: 765.0,
                distance_km: 16.45,
                mean_speed_kmh: 77.7,
                max_speed_kmh: 96.4,
            },
            StandardCycle::Sc03 => PublishedStats {
                duration_s: 596.0,
                distance_km: 5.76,
                mean_speed_kmh: 34.8,
                max_speed_kmh: 88.2,
            },
            StandardCycle::Nycc => PublishedStats {
                duration_s: 598.0,
                distance_km: 1.90,
                mean_speed_kmh: 11.4,
                max_speed_kmh: 44.6,
            },
            StandardCycle::Us06 => PublishedStats {
                duration_s: 596.0,
                distance_km: 12.89,
                mean_speed_kmh: 77.9,
                max_speed_kmh: 129.2,
            },
            // OSCAR and MODEM are project-defined EU urban cycles without a
            // single canonical variant; targets below are the ones our
            // approximations are calibrated to.
            StandardCycle::Oscar => PublishedStats {
                duration_s: 560.0,
                distance_km: 3.40,
                mean_speed_kmh: 21.9,
                max_speed_kmh: 61.0,
            },
            StandardCycle::ModemUrban => PublishedStats {
                duration_s: 810.0,
                distance_km: 4.60,
                mean_speed_kmh: 20.4,
                max_speed_kmh: 58.0,
            },
            StandardCycle::Wltc => PublishedStats {
                duration_s: 1800.0,
                distance_km: 23.27,
                mean_speed_kmh: 46.5,
                max_speed_kmh: 131.3,
            },
        }
    }

    /// Builds the 1 Hz speed trace of this cycle.
    pub fn cycle(self) -> DriveCycle {
        let built = match self {
            StandardCycle::Udds => udds(),
            StandardCycle::Hwfet => hwfet(),
            StandardCycle::Sc03 => sc03(),
            StandardCycle::Nycc => nycc(),
            StandardCycle::Us06 => us06(),
            StandardCycle::Oscar => oscar(),
            StandardCycle::ModemUrban => modem_urban(),
            StandardCycle::Wltc => wltc(),
        };
        // hevlint::allow(panic::expect, the eight cycle tables are compile-time constants; emptiness is covered by the standard-cycle tests)
        built.expect("standard cycle definitions are non-empty")
    }
}

impl fmt::Display for StandardCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`StandardCycle`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCycleError(String);

impl fmt::Display for ParseCycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown standard cycle name `{}`", self.0)
    }
}

impl std::error::Error for ParseCycleError {}

impl FromStr for StandardCycle {
    type Err = ParseCycleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "UDDS" => Ok(StandardCycle::Udds),
            "HWFET" => Ok(StandardCycle::Hwfet),
            "SC03" => Ok(StandardCycle::Sc03),
            "NYCC" => Ok(StandardCycle::Nycc),
            "US06" => Ok(StandardCycle::Us06),
            "OSCAR" => Ok(StandardCycle::Oscar),
            "MODEM" | "MODEM-URBAN" | "MODEM_URBAN" => Ok(StandardCycle::ModemUrban),
            "WLTC" | "WLTP" => Ok(StandardCycle::Wltc),
            other => Err(ParseCycleError(other.to_string())),
        }
    }
}

type Built = Result<DriveCycle, crate::error::CycleError>;

fn udds() -> Built {
    ProfileBuilder::new("UDDS")
        .idle(20.0)
        .trip(30.0, 10.0, 15.0, 8.0, 20.0)
        // The signature UDDS "first hill" to 91 km/h.
        .trip(91.0, 35.0, 150.0, 30.0, 15.0)
        .trip(50.0, 15.0, 40.0, 12.0, 20.0)
        .trip(40.0, 12.0, 30.0, 10.0, 15.0)
        .trip(45.0, 14.0, 55.0, 11.0, 20.0)
        .trip(35.0, 10.0, 25.0, 9.0, 15.0)
        .trip(55.0, 16.0, 45.0, 13.0, 20.0)
        .trip(40.0, 12.0, 28.0, 10.0, 15.0)
        .trip(30.0, 9.0, 20.0, 8.0, 10.0)
        .trip(48.0, 14.0, 36.0, 12.0, 20.0)
        .trip(42.0, 13.0, 30.0, 10.0, 15.0)
        .trip(38.0, 11.0, 26.0, 9.0, 10.0)
        .trip(52.0, 15.0, 40.0, 12.0, 20.0)
        .trip(34.0, 10.0, 22.0, 8.0, 15.0)
        .trip(44.0, 13.0, 32.0, 11.0, 10.0)
        .trip(36.0, 11.0, 24.0, 9.0, 15.0)
        .trip(28.0, 8.0, 18.0, 7.0, 12.0)
        .idle(29.0)
        .build()
}

fn hwfet() -> Built {
    ProfileBuilder::new("HWFET")
        .idle(5.0)
        .ramp_to(80.0, 30.0)
        .cruise(60.0)
        .ramp_to(96.0, 20.0)
        .cruise(50.0)
        .ramp_to(65.0, 15.0)
        .cruise(60.0)
        .ramp_to(90.0, 20.0)
        .cruise(80.0)
        .ramp_to(70.0, 15.0)
        .cruise(70.0)
        .ramp_to(85.0, 15.0)
        .cruise(90.0)
        .ramp_to(75.0, 10.0)
        .cruise(80.0)
        .ramp_to(88.0, 12.0)
        .cruise(60.0)
        .ramp_to(60.0, 15.0)
        .cruise(30.0)
        .ramp_to(0.0, 28.0)
        .build()
}

fn sc03() -> Built {
    ProfileBuilder::new("SC03")
        .idle(20.0)
        .trip(40.0, 12.0, 25.0, 10.0, 15.0)
        .trip(88.0, 30.0, 40.0, 25.0, 20.0)
        .trip(50.0, 15.0, 35.0, 12.0, 15.0)
        .trip(35.0, 10.0, 22.0, 9.0, 12.0)
        .trip(55.0, 16.0, 38.0, 13.0, 18.0)
        .trip(45.0, 13.0, 30.0, 11.0, 15.0)
        .trip(60.0, 17.0, 40.0, 14.0, 10.0)
        .trip(30.0, 9.0, 15.0, 7.0, 3.0)
        .build()
}

fn nycc() -> Built {
    ProfileBuilder::new("NYCC")
        .idle(25.0)
        .trip(20.0, 8.0, 10.0, 6.0, 20.0)
        .trip(44.0, 15.0, 20.0, 12.0, 25.0)
        .trip(15.0, 6.0, 8.0, 5.0, 18.0)
        .trip(25.0, 9.0, 12.0, 7.0, 22.0)
        .trip(30.0, 10.0, 15.0, 8.0, 20.0)
        .trip(18.0, 7.0, 9.0, 5.0, 15.0)
        .trip(35.0, 12.0, 18.0, 9.0, 25.0)
        .trip(22.0, 8.0, 10.0, 6.0, 20.0)
        .trip(28.0, 9.0, 14.0, 8.0, 18.0)
        .trip(40.0, 13.0, 20.0, 10.0, 15.0)
        .trip(16.0, 6.0, 8.0, 5.0, 22.0)
        .idle(25.0)
        .build()
}

fn us06() -> Built {
    ProfileBuilder::new("US06")
        .idle(5.0)
        .ramp_to(100.0, 25.0)
        .cruise(30.0)
        .ramp_to(129.0, 20.0)
        .cruise(40.0)
        .ramp_to(80.0, 15.0)
        .cruise(30.0)
        .ramp_to(0.0, 20.0)
        .idle(10.0)
        .ramp_to(60.0, 12.0)
        .cruise(20.0)
        .ramp_to(0.0, 12.0)
        .idle(8.0)
        .ramp_to(110.0, 25.0)
        .cruise(60.0)
        .ramp_to(90.0, 10.0)
        .cruise(40.0)
        .ramp_to(120.0, 15.0)
        .cruise(50.0)
        .ramp_to(70.0, 15.0)
        .cruise(25.0)
        .ramp_to(100.0, 15.0)
        .cruise(35.0)
        .ramp_to(0.0, 30.0)
        .idle(29.0)
        .build()
}

fn oscar() -> Built {
    ProfileBuilder::new("OSCAR")
        .idle(15.0)
        .trip(32.0, 10.0, 20.0, 8.0, 15.0)
        .trip(50.0, 15.0, 30.0, 12.0, 20.0)
        .trip(61.0, 18.0, 35.0, 15.0, 18.0)
        .trip(25.0, 8.0, 15.0, 7.0, 15.0)
        .trip(40.0, 12.0, 25.0, 10.0, 20.0)
        .trip(35.0, 11.0, 20.0, 9.0, 15.0)
        .trip(45.0, 14.0, 28.0, 11.0, 18.0)
        .trip(30.0, 9.0, 18.0, 8.0, 10.0)
        .trip(20.0, 7.0, 10.0, 6.0, 23.0)
        .build()
}

fn modem_urban() -> Built {
    ProfileBuilder::new("MODEM")
        .idle(20.0)
        .trip(25.0, 8.0, 12.0, 7.0, 18.0)
        .trip(42.0, 13.0, 22.0, 10.0, 20.0)
        .trip(58.0, 17.0, 60.0, 14.0, 22.0)
        .trip(30.0, 9.0, 15.0, 8.0, 15.0)
        .trip(35.0, 11.0, 18.0, 9.0, 20.0)
        .trip(48.0, 14.0, 25.0, 12.0, 18.0)
        .trip(22.0, 7.0, 10.0, 6.0, 15.0)
        .trip(38.0, 12.0, 20.0, 9.0, 20.0)
        .trip(52.0, 15.0, 28.0, 13.0, 17.0)
        .trip(28.0, 9.0, 14.0, 7.0, 15.0)
        .trip(45.0, 13.0, 24.0, 11.0, 20.0)
        .trip(33.0, 10.0, 16.0, 8.0, 30.0)
        .idle(44.0)
        .build()
}

/// WLTC class 3: four phases of rising speed (low / medium / high /
/// extra-high), 1800 s total.
fn wltc() -> Built {
    ProfileBuilder::new("WLTC")
        // --- Low phase (589 s, urban stop-and-go) ---
        .idle(12.0)
        .trip(40.0, 12.0, 25.0, 10.0, 15.0)
        .trip(56.0, 16.0, 25.0, 14.0, 18.0)
        .trip(32.0, 10.0, 20.0, 8.0, 15.0)
        .trip(45.0, 13.0, 20.0, 11.0, 20.0)
        .trip(50.0, 14.0, 25.0, 12.0, 16.0)
        .trip(30.0, 9.0, 18.0, 8.0, 12.0)
        .trip(38.0, 11.0, 28.0, 9.0, 14.0)
        .trip(35.0, 10.0, 30.0, 9.0, 25.0)
        .idle(75.0)
        // --- Medium phase (433 s) ---
        .ramp_to(60.0, 20.0)
        .cruise(50.0)
        .ramp_to(76.0, 18.0)
        .cruise(45.0)
        .ramp_to(35.0, 15.0)
        .cruise(30.0)
        .ramp_to(0.0, 12.0)
        .idle(15.0)
        .trip(55.0, 15.0, 60.0, 13.0, 20.0)
        .trip(50.0, 14.0, 45.0, 12.0, 29.0)
        .idle(20.0)
        // --- High phase (455 s) ---
        .ramp_to(80.0, 25.0)
        .cruise(100.0)
        .ramp_to(97.0, 15.0)
        .cruise(60.0)
        .ramp_to(60.0, 18.0)
        .cruise(50.0)
        .ramp_to(90.0, 20.0)
        .cruise(50.0)
        .ramp_to(30.0, 25.0)
        .cruise(40.0)
        .ramp_to(0.0, 12.0)
        .idle(40.0)
        // --- Extra-high phase (323 s) ---
        .ramp_to(100.0, 30.0)
        .cruise(40.0)
        .ramp_to(131.0, 25.0)
        .cruise(50.0)
        .ramp_to(110.0, 12.0)
        .cruise(40.0)
        .ramp_to(125.0, 15.0)
        .cruise(30.0)
        .ramp_to(0.0, 45.0)
        .idle(36.0)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CycleStats;

    #[test]
    fn all_cycles_build() {
        for sc in StandardCycle::all() {
            let c = sc.cycle();
            assert!(!c.is_empty());
            assert_eq!(c.name(), sc.name());
        }
    }

    #[test]
    fn durations_match_published_exactly() {
        for sc in StandardCycle::all() {
            let c = sc.cycle();
            let p = sc.published_stats();
            assert!(
                (c.duration_s() - p.duration_s).abs() <= 1.0,
                "{sc}: duration {} vs published {}",
                c.duration_s(),
                p.duration_s
            );
        }
    }

    #[test]
    fn max_speed_within_3_kmh_of_published() {
        for sc in StandardCycle::all() {
            let s = CycleStats::of(&sc.cycle());
            let p = sc.published_stats();
            assert!(
                (s.max_speed_kmh - p.max_speed_kmh).abs() <= 3.0,
                "{sc}: max {} vs published {}",
                s.max_speed_kmh,
                p.max_speed_kmh
            );
        }
    }

    #[test]
    fn mean_speed_within_15_percent_of_published() {
        for sc in StandardCycle::all() {
            let s = CycleStats::of(&sc.cycle());
            let p = sc.published_stats();
            let rel = (s.mean_speed_kmh - p.mean_speed_kmh).abs() / p.mean_speed_kmh;
            assert!(
                rel <= 0.15,
                "{sc}: mean {} vs published {} (rel {rel:.3})",
                s.mean_speed_kmh,
                p.mean_speed_kmh
            );
        }
    }

    #[test]
    fn distance_within_15_percent_of_published() {
        for sc in StandardCycle::all() {
            let s = CycleStats::of(&sc.cycle());
            let p = sc.published_stats();
            let rel = (s.distance_km - p.distance_km).abs() / p.distance_km;
            assert!(
                rel <= 0.15,
                "{sc}: distance {} vs published {} (rel {rel:.3})",
                s.distance_km,
                p.distance_km
            );
        }
    }

    #[test]
    fn urban_cycles_have_substantial_idle() {
        for sc in [
            StandardCycle::Udds,
            StandardCycle::Nycc,
            StandardCycle::Oscar,
        ] {
            let s = CycleStats::of(&sc.cycle());
            assert!(
                s.idle_fraction > 0.10,
                "{sc}: idle fraction {}",
                s.idle_fraction
            );
            assert!(s.stop_count >= 5, "{sc}: stops {}", s.stop_count);
        }
    }

    #[test]
    fn highway_cycle_has_little_idle() {
        let s = CycleStats::of(&StandardCycle::Hwfet.cycle());
        assert!(s.idle_fraction < 0.06);
        assert!(s.stop_count <= 1);
    }

    #[test]
    fn us06_is_most_aggressive() {
        let us06 = CycleStats::of(&StandardCycle::Us06.cycle());
        let udds = CycleStats::of(&StandardCycle::Udds.cycle());
        assert!(us06.max_speed_kmh > udds.max_speed_kmh);
        assert!(us06.mean_positive_specific_power > udds.mean_positive_specific_power * 0.9);
    }

    #[test]
    fn parse_roundtrip() {
        for sc in StandardCycle::all() {
            let parsed: StandardCycle = sc.name().parse().unwrap();
            assert_eq!(parsed, sc);
        }
        assert!("BOGUS".parse::<StandardCycle>().is_err());
        assert_eq!(
            "udds".parse::<StandardCycle>().unwrap(),
            StandardCycle::Udds
        );
    }

    #[test]
    fn paper_set_is_the_four_evaluation_cycles() {
        let names: Vec<_> = StandardCycle::paper_set()
            .iter()
            .map(|c| c.name())
            .collect();
        assert_eq!(names, ["OSCAR", "UDDS", "SC03", "HWFET"]);
    }

    #[test]
    fn cycles_start_and_end_near_rest() {
        for sc in StandardCycle::all() {
            let c = sc.cycle();
            assert!(c.speed_at(0) < 0.5, "{sc} starts moving");
            assert!(c.speed_at(c.len() - 1) < 0.5, "{sc} ends moving");
        }
    }
}
