//! Error types for cycle construction and manipulation.

use std::error::Error;
use std::fmt;

/// Error returned when constructing or transforming a [`DriveCycle`] fails.
///
/// [`DriveCycle`]: crate::DriveCycle
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields carry self-describing names
pub enum CycleError {
    /// The speed trace is empty.
    Empty,
    /// A speed sample is negative or non-finite.
    ///
    /// Carries the offending sample index and value.
    InvalidSpeed { index: usize, value: f64 },
    /// A grade sample is non-finite.
    InvalidGrade { index: usize, value: f64 },
    /// The grade vector length does not match the speed vector length.
    GradeLengthMismatch { speeds: usize, grades: usize },
    /// The sample interval is zero, negative, or non-finite.
    InvalidTimeStep(f64),
    /// Knot points are not strictly increasing in time.
    NonMonotonicKnots { index: usize },
    /// A slice request is out of bounds or inverted.
    InvalidRange {
        start: usize,
        end: usize,
        len: usize,
    },
    /// A CSV row could not be parsed (line numbers are 1-based; 0 marks
    /// a whole-file problem).
    ParseCsv { line: usize, reason: String },
    /// A filesystem operation failed.
    Io { reason: String },
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleError::Empty => write!(f, "cycle has no samples"),
            CycleError::InvalidSpeed { index, value } => {
                write!(f, "invalid speed {value} at sample {index}")
            }
            CycleError::InvalidGrade { index, value } => {
                write!(f, "invalid grade {value} at sample {index}")
            }
            CycleError::GradeLengthMismatch { speeds, grades } => write!(
                f,
                "grade length {grades} does not match speed length {speeds}"
            ),
            CycleError::InvalidTimeStep(dt) => write!(f, "invalid time step {dt}"),
            CycleError::NonMonotonicKnots { index } => {
                write!(f, "knot times are not strictly increasing at knot {index}")
            }
            CycleError::InvalidRange { start, end, len } => {
                write!(
                    f,
                    "invalid sample range {start}..{end} for cycle of length {len}"
                )
            }
            CycleError::ParseCsv { line, reason } => {
                if *line == 0 {
                    write!(f, "invalid cycle csv: {reason}")
                } else {
                    write!(f, "invalid cycle csv at line {line}: {reason}")
                }
            }
            CycleError::Io { reason } => write!(f, "cycle file i/o failed: {reason}"),
        }
    }
}

impl Error for CycleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            CycleError::Empty,
            CycleError::InvalidSpeed {
                index: 3,
                value: -1.0,
            },
            CycleError::InvalidGrade {
                index: 0,
                value: f64::NAN,
            },
            CycleError::GradeLengthMismatch {
                speeds: 10,
                grades: 4,
            },
            CycleError::InvalidTimeStep(0.0),
            CycleError::NonMonotonicKnots { index: 2 },
            CycleError::InvalidRange {
                start: 5,
                end: 2,
                len: 10,
            },
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(CycleError::Empty);
        assert!(e.source().is_none());
    }
}
