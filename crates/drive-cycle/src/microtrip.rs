//! Stochastic micro-trip cycle generation.
//!
//! Reinforcement-learning controllers overfit when trained on a single
//! deterministic trace. [`MicroTripGenerator`] produces randomized urban /
//! mixed cycles — sequences of accelerate-cruise-brake-idle micro-trips —
//! whose statistics are controlled by [`MicroTripConfig`]. Seeded
//! generation is deterministic, so experiments are reproducible.

use crate::cycle::DriveCycle;
use crate::profile::ProfileBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the stochastic micro-trip generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroTripConfig {
    /// Approximate total cycle duration, seconds. Generation stops after
    /// the first micro-trip that crosses this mark.
    pub target_duration_s: f64,
    /// Minimum micro-trip peak speed, km/h.
    pub min_peak_kmh: f64,
    /// Maximum micro-trip peak speed, km/h.
    pub max_peak_kmh: f64,
    /// Mean acceleration used for ramp-up segments, m/s².
    pub mean_accel_mps2: f64,
    /// Mean deceleration magnitude used for ramp-down segments, m/s².
    pub mean_decel_mps2: f64,
    /// Minimum cruise duration, seconds.
    pub min_cruise_s: f64,
    /// Maximum cruise duration, seconds.
    pub max_cruise_s: f64,
    /// Minimum idle dwell between trips, seconds.
    pub min_idle_s: f64,
    /// Maximum idle dwell between trips, seconds.
    pub max_idle_s: f64,
}

impl MicroTripConfig {
    /// Urban stop-and-go traffic (short trips, long dwells).
    pub fn urban() -> Self {
        Self {
            target_duration_s: 800.0,
            min_peak_kmh: 15.0,
            max_peak_kmh: 60.0,
            mean_accel_mps2: 0.8,
            mean_decel_mps2: 1.0,
            min_cruise_s: 8.0,
            max_cruise_s: 45.0,
            min_idle_s: 5.0,
            max_idle_s: 30.0,
        }
    }

    /// Suburban / arterial traffic (longer, faster trips, short dwells).
    pub fn suburban() -> Self {
        Self {
            target_duration_s: 900.0,
            min_peak_kmh: 40.0,
            max_peak_kmh: 90.0,
            mean_accel_mps2: 0.9,
            mean_decel_mps2: 1.1,
            min_cruise_s: 20.0,
            max_cruise_s: 90.0,
            min_idle_s: 3.0,
            max_idle_s: 15.0,
        }
    }

    /// Mixed urban/highway commute.
    pub fn mixed() -> Self {
        Self {
            target_duration_s: 1200.0,
            min_peak_kmh: 20.0,
            max_peak_kmh: 110.0,
            mean_accel_mps2: 0.85,
            mean_decel_mps2: 1.0,
            min_cruise_s: 10.0,
            max_cruise_s: 120.0,
            min_idle_s: 4.0,
            max_idle_s: 25.0,
        }
    }
}

impl Default for MicroTripConfig {
    fn default() -> Self {
        Self::urban()
    }
}

/// Deterministic, seeded generator of randomized driving cycles.
///
/// # Examples
///
/// ```
/// use drive_cycle::{MicroTripConfig, MicroTripGenerator};
///
/// let mut generator = MicroTripGenerator::new(MicroTripConfig::urban(), 42);
/// let a = generator.generate("train-0");
/// let b = MicroTripGenerator::new(MicroTripConfig::urban(), 42).generate("train-0");
/// assert_eq!(a, b); // same seed, same cycle
/// ```
#[derive(Debug, Clone)]
pub struct MicroTripGenerator {
    config: MicroTripConfig,
    rng: StdRng,
}

impl MicroTripGenerator {
    /// Creates a generator with the given configuration and RNG seed.
    pub fn new(config: MicroTripConfig, seed: u64) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &MicroTripConfig {
        &self.config
    }

    /// Generates one randomized cycle.
    pub fn generate(&mut self, name: impl Into<String>) -> DriveCycle {
        let c = &self.config;
        let mut builder = ProfileBuilder::new(name);
        let mut elapsed = 0.0;
        builder = builder.idle(5.0);
        elapsed += 5.0;
        while elapsed < c.target_duration_s {
            let peak = self.rng.gen_range(c.min_peak_kmh..=c.max_peak_kmh);
            let peak_mps = peak / 3.6;
            let accel = c.mean_accel_mps2 * self.rng.gen_range(0.7..1.3);
            let decel = c.mean_decel_mps2 * self.rng.gen_range(0.7..1.3);
            let up = (peak_mps / accel).max(2.0);
            let down = (peak_mps / decel).max(2.0);
            let cruise = self.rng.gen_range(c.min_cruise_s..=c.max_cruise_s);
            let idle = self.rng.gen_range(c.min_idle_s..=c.max_idle_s);
            builder = builder.trip(peak, up, cruise, down, idle);
            elapsed += up + cruise + down + idle;
        }
        // hevlint::allow(panic::expect, the generator loop always appends at least one trip before building)
        builder.build().expect("generated profile is non-empty")
    }

    /// Generates a batch of cycles named `prefix-0`, `prefix-1`, ….
    pub fn generate_batch(&mut self, prefix: &str, count: usize) -> Vec<DriveCycle> {
        (0..count)
            .map(|i| self.generate(format!("{prefix}-{i}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CycleStats;

    #[test]
    fn generation_is_seed_deterministic() {
        let a = MicroTripGenerator::new(MicroTripConfig::urban(), 7).generate("x");
        let b = MicroTripGenerator::new(MicroTripConfig::urban(), 7).generate("x");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = MicroTripGenerator::new(MicroTripConfig::urban(), 1).generate("x");
        let b = MicroTripGenerator::new(MicroTripConfig::urban(), 2).generate("x");
        assert_ne!(a, b);
    }

    #[test]
    fn respects_speed_bounds() {
        let c = MicroTripGenerator::new(MicroTripConfig::urban(), 3).generate("x");
        let s = CycleStats::of(&c);
        assert!(s.max_speed_kmh <= MicroTripConfig::urban().max_peak_kmh + 0.5);
    }

    #[test]
    fn duration_near_target() {
        let cfg = MicroTripConfig::urban();
        let c = MicroTripGenerator::new(cfg, 11).generate("x");
        assert!(c.duration_s() >= cfg.target_duration_s);
        // One micro-trip can overshoot by at most its own worst-case length.
        assert!(c.duration_s() < cfg.target_duration_s + 400.0);
    }

    #[test]
    fn urban_slower_than_suburban() {
        let u = CycleStats::of(&MicroTripGenerator::new(MicroTripConfig::urban(), 5).generate("u"));
        let s =
            CycleStats::of(&MicroTripGenerator::new(MicroTripConfig::suburban(), 5).generate("s"));
        assert!(u.mean_speed_kmh < s.mean_speed_kmh);
    }

    #[test]
    fn batch_generates_distinct_named_cycles() {
        let mut generator = MicroTripGenerator::new(MicroTripConfig::mixed(), 9);
        let batch = generator.generate_batch("train", 3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].name(), "train-0");
        assert_eq!(batch[2].name(), "train-2");
        assert_ne!(batch[0], batch[1]);
    }

    #[test]
    fn generated_cycles_are_physical() {
        let c = MicroTripGenerator::new(MicroTripConfig::mixed(), 21).generate("p");
        let s = CycleStats::of(&c);
        assert!(s.max_accel_mps2 < 3.5, "accel {}", s.max_accel_mps2);
        assert!(s.max_decel_mps2 > -3.5, "decel {}", s.max_decel_mps2);
        assert!(c.speeds_mps().iter().all(|&v| v >= 0.0));
    }
}
