//! Property-based tests of cycle-manipulation invariants.

use drive_cycle::{io, CycleStats, DriveCycle, MicroTripConfig, MicroTripGenerator};
use proptest::prelude::*;

fn arb_speeds() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..45.0, 2..200)
}

proptest! {
    /// Slicing then concatenating reconstructs the cycle.
    #[test]
    fn slice_concat_identity(speeds in arb_speeds(), cut_frac in 0.1f64..0.9) {
        let c = DriveCycle::from_speeds_mps("p", 1.0, speeds).unwrap();
        let cut = ((c.len() as f64 * cut_frac) as usize).clamp(1, c.len() - 1);
        let a = c.slice(0, cut).unwrap();
        let b = c.slice(cut, c.len()).unwrap();
        let joined = a.concat(&b);
        prop_assert_eq!(joined.speeds_mps(), c.speeds_mps());
    }

    /// Resampling to the same rate is the identity; finer resampling
    /// preserves the endpoints and never invents speed extremes.
    #[test]
    fn resample_preserves_range(speeds in arb_speeds(), factor in 1u32..5) {
        let c = DriveCycle::from_speeds_mps("p", 1.0, speeds).unwrap();
        let fine = c.resample(1.0 / factor as f64);
        let max0 = c.speeds_mps().iter().cloned().fold(0.0, f64::max);
        let max1 = fine.speeds_mps().iter().cloned().fold(0.0, f64::max);
        prop_assert!(max1 <= max0 + 1e-9);
        prop_assert!((fine.speed_at(0) - c.speed_at(0)).abs() < 1e-12);
    }

    /// Scaling speeds scales distance linearly.
    #[test]
    fn scale_scales_distance(speeds in arb_speeds(), factor in 0.1f64..3.0) {
        let c = DriveCycle::from_speeds_mps("p", 1.0, speeds).unwrap();
        let scaled = c.scale_speed(factor);
        prop_assert!((scaled.distance_m() - factor * c.distance_m()).abs()
            < 1e-6 * (1.0 + c.distance_m()));
    }

    /// Smoothing never raises the maximum speed and preserves length.
    #[test]
    fn smooth_contracts(speeds in arb_speeds(), window in 1usize..9) {
        let c = DriveCycle::from_speeds_mps("p", 1.0, speeds).unwrap();
        let s = c.smooth(window);
        prop_assert_eq!(s.len(), c.len());
        let max0 = c.speeds_mps().iter().cloned().fold(0.0, f64::max);
        let max1 = s.speeds_mps().iter().cloned().fold(0.0, f64::max);
        prop_assert!(max1 <= max0 + 1e-9);
    }

    /// Micro-trip ranges partition the cycle exactly.
    #[test]
    fn microtrips_partition(speeds in arb_speeds()) {
        let c = DriveCycle::from_speeds_mps("p", 1.0, speeds).unwrap();
        let ranges = c.microtrip_ranges(0.1);
        let mut expected_start = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, expected_start);
            expected_start = r.end;
        }
        prop_assert_eq!(expected_start, c.len());
    }

    /// Perturbation stays within the advertised envelope.
    #[test]
    fn perturbation_bounded(speeds in arb_speeds(), seed in 0u64..500, amp in 0.0f64..0.2) {
        let c = DriveCycle::from_speeds_mps("p", 1.0, speeds).unwrap();
        let p = c.perturbed(seed, amp);
        for (&a, &b) in c.speeds_mps().iter().zip(p.speeds_mps()) {
            prop_assert!(b >= 0.0);
            prop_assert!((b - a).abs() <= a * amp + 1e-9);
        }
    }

    /// CSV serialization round-trips every cycle (with or without a
    /// grade column), including under CRLF line endings and a UTF-8 BOM.
    #[test]
    fn csv_roundtrip(speeds in arb_speeds(), with_grade in 0u8..2, decorate in 0u8..2) {
        let (with_grade, decorate) = (with_grade == 1, decorate == 1);
        let c = if with_grade {
            let grades: Vec<f64> = (0..speeds.len()).map(|i| 0.01 * (i % 5) as f64).collect();
            DriveCycle::with_grade("p", 1.0, speeds, grades).unwrap()
        } else {
            DriveCycle::from_speeds_mps("p", 1.0, speeds).unwrap()
        };
        let mut csv = io::to_csv_string(&c);
        if decorate {
            // Real-world exports: BOM + CRLF must parse identically.
            csv = format!("\u{feff}{}", csv.replace('\n', "\r\n"));
        }
        let back = io::from_csv_str("p", &csv).unwrap();
        prop_assert_eq!(back.len(), c.len());
        for i in 0..c.len() {
            prop_assert!((back.speed_at(i) - c.speed_at(i)).abs() < 1e-9);
            prop_assert!((back.grade_at(i) - c.grade_at(i)).abs() < 1e-9);
        }
    }

    /// Cycle statistics are internally consistent for any generated
    /// urban cycle.
    #[test]
    fn generated_cycle_stats_consistent(seed in 0u64..100) {
        let c = MicroTripGenerator::new(MicroTripConfig::urban(), seed).generate("g");
        let s = CycleStats::of(&c);
        prop_assert!(s.mean_speed_kmh <= s.mean_moving_speed_kmh + 1e-9);
        prop_assert!(s.mean_moving_speed_kmh <= s.max_speed_kmh + 1e-9);
        prop_assert!((0.0..=1.0).contains(&s.idle_fraction));
        prop_assert!(s.duration_s as usize == c.len());
        prop_assert!((s.distance_km * 1000.0 - c.distance_m()).abs() < 1e-6);
    }
}
