//! Throughput of the TD(λ) learner's select/update loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hev_rl::{EpsilonGreedy, OneStepConfig, QLearning, TdLambda, TdLambdaConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_rl_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("rl_update");
    let n_states = 3840;
    let n_actions = 15;
    let mask = vec![true; n_actions];
    let policy = EpsilonGreedy::new(0.1);

    group.bench_function("td_lambda_update", |b| {
        let mut learner = TdLambda::new(n_states, n_actions, TdLambdaConfig::default());
        let mut s = 0usize;
        b.iter(|| {
            let delta = learner.update(black_box(s), 3, -0.5, (s + 17) % n_states, Some(&mask));
            s = (s + 17) % n_states;
            delta
        })
    });

    group.bench_function("td_lambda_select", |b| {
        let learner = TdLambda::new(n_states, n_actions, TdLambdaConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = 0usize;
        b.iter(|| {
            let a = learner.select(black_box(s), &mask, &policy, &mut rng);
            s = (s + 31) % n_states;
            a
        })
    });

    group.bench_function("q_learning_update", |b| {
        let mut learner = QLearning::new(n_states, n_actions, OneStepConfig::default());
        let mut s = 0usize;
        b.iter(|| {
            let delta = learner.update(black_box(s), 3, -0.5, (s + 17) % n_states, Some(&mask));
            s = (s + 17) % n_states;
            delta
        })
    });

    group.finish();
}

criterion_group!(benches, bench_rl_update);
criterion_main!(benches);
