//! Throughput of the vehicle model's backward-looking step — the
//! innermost primitive of every experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hev_model::{ControlInput, HevParams, ParallelHev};

fn bench_hev_step(c: &mut Criterion) {
    let hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap();
    let mut group = c.benchmark_group("hev_step");

    let cruise = hev.demand(20.0, 0.0, 0.0);
    let control = ControlInput {
        battery_current_a: 5.0,
        gear: 3,
        p_aux_w: 600.0,
    };
    group.bench_function("peek_cruise_engine_on", |b| {
        b.iter(|| hev.peek(black_box(&cruise), black_box(&control), 1.0))
    });

    let launch = hev.demand(3.0, 0.4, 0.0);
    let ev = ControlInput {
        battery_current_a: 40.0,
        gear: 0,
        p_aux_w: 600.0,
    };
    group.bench_function("peek_ev_launch", |b| {
        b.iter(|| hev.peek(black_box(&launch), black_box(&ev), 1.0))
    });

    let braking = hev.demand(15.0, -1.5, 0.0);
    let regen = ControlInput {
        battery_current_a: -25.0,
        gear: 2,
        p_aux_w: 600.0,
    };
    group.bench_function("peek_regen_braking", |b| {
        b.iter(|| hev.peek(black_box(&braking), black_box(&regen), 1.0))
    });

    group.bench_function("demand_computation", |b| {
        b.iter(|| hev.demand(black_box(17.3), black_box(0.4), black_box(0.01)))
    });

    group.finish();
}

criterion_group!(benches, bench_hev_step);
criterion_main!(benches);
