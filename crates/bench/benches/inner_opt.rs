//! Latency of the per-step inner optimization (reduced action space):
//! this bounds the controller's real-time budget.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hev_control::{InnerOptimizer, RewardConfig};
use hev_model::{HevParams, ParallelHev};

fn bench_inner_opt(c: &mut Criterion) {
    let hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap();
    let reward = RewardConfig::default();
    let opt = InnerOptimizer::default();
    let fixed = InnerOptimizer::with_fixed_aux(600.0);
    let mut group = c.benchmark_group("inner_opt");

    let cruise = hev.demand(20.0, 0.0, 0.0);
    group.bench_function("resolve_cruise", |b| {
        b.iter(|| opt.resolve(&hev, black_box(&cruise), 5.0, 1.0, &reward))
    });

    let accel = hev.demand(12.0, 1.0, 0.0);
    group.bench_function("resolve_accel", |b| {
        b.iter(|| opt.resolve(&hev, black_box(&accel), 40.0, 1.0, &reward))
    });

    group.bench_function("resolve_fixed_aux", |b| {
        b.iter(|| fixed.resolve(&hev, black_box(&cruise), 5.0, 1.0, &reward))
    });

    group.bench_function("feasibility_probe", |b| {
        b.iter(|| opt.feasible(&hev, black_box(&cruise), 5.0, 1.0))
    });

    group.finish();
}

criterion_group!(benches, bench_inner_opt);
criterion_main!(benches);
