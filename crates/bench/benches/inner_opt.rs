//! Latency of the per-step inner optimization (reduced action space):
//! this bounds the controller's real-time budget.
//!
//! The `resolve_*` benches measure the staged pipeline the way every
//! production caller runs it: the [`StepContext`] is built once per
//! simulation step (see `sim::simulate` and the DP solver) and amortized
//! across all currents resolved against it, so the per-resolve cost is
//! `resolve_with` against a prebuilt context. The build itself is
//! measured separately as `step_context_build`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hev_control::{InnerOptimizer, RewardConfig};
use hev_model::{HevParams, ParallelHev};

fn bench_inner_opt(c: &mut Criterion) {
    let hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap();
    let reward = RewardConfig::default();
    let opt = InnerOptimizer::default();
    let fixed = InnerOptimizer::with_fixed_aux(600.0);
    let mut group = c.benchmark_group("inner_opt");

    let cruise = hev.demand(20.0, 0.0, 0.0);
    let cruise_ctx = hev.step_context(&cruise);
    group.bench_function("resolve_cruise", |b| {
        b.iter(|| opt.resolve_with(&hev, black_box(&cruise_ctx), 5.0, 1.0, &reward))
    });

    let accel = hev.demand(12.0, 1.0, 0.0);
    let accel_ctx = hev.step_context(&accel);
    group.bench_function("resolve_accel", |b| {
        b.iter(|| opt.resolve_with(&hev, black_box(&accel_ctx), 40.0, 1.0, &reward))
    });

    group.bench_function("resolve_fixed_aux", |b| {
        b.iter(|| fixed.resolve_with(&hev, black_box(&cruise_ctx), 5.0, 1.0, &reward))
    });

    group.bench_function("step_context_build", |b| {
        b.iter(|| hev.step_context(black_box(&cruise)))
    });

    group.bench_function("feasibility_probe", |b| {
        b.iter(|| opt.feasible(&hev, black_box(&cruise), 5.0, 1.0))
    });

    group.finish();
}

criterion_group!(benches, bench_inner_opt);
criterion_main!(benches);
