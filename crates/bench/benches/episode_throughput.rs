//! End-to-end episode throughput of the joint controller's decision
//! loop: full training episodes (action mask, myopic argmax,
//! inner-optimizer resolve, apply) and greedy evaluation episodes on
//! UDDS. This is the number the staged [`StepContext`] pipeline exists
//! to improve — the micro-benches in `inner_opt.rs` measure one resolve,
//! this measures a whole simulated episode the way `repro` runs it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use drive_cycle::StandardCycle;
use hev_bench::experiments::fresh_hev;
use hev_control::RuleBasedController;
use hev_control::{simulate, JointController, JointControllerConfig, RewardConfig};

fn bench_episode_throughput(c: &mut Criterion) {
    let cycle = StandardCycle::Udds.cycle();
    let mut group = c.benchmark_group("episode_throughput");

    // One training episode from a fresh agent: exploration plus learning
    // updates, every step through the staged pipeline.
    group.bench_function("train_episode_udds", |b| {
        b.iter(|| {
            let mut cfg = JointControllerConfig::proposed();
            cfg.seed = 42;
            let mut agent = JointController::new(cfg);
            let mut hev = fresh_hev(0.6);
            agent.train(&mut hev, black_box(&cycle), 1);
            agent
        })
    });

    // A greedy evaluation episode from a trained agent — the production
    // deployment path.
    let mut cfg = JointControllerConfig::proposed();
    cfg.seed = 42;
    let mut trained = JointController::new(cfg);
    let mut hev = fresh_hev(0.6);
    trained.train(&mut hev, &cycle, 2);
    group.bench_function("eval_episode_udds", |b| {
        b.iter(|| {
            let mut hev = fresh_hev(0.6);
            trained.evaluate(&mut hev, black_box(&cycle)).fuel_g
        })
    });

    // The rule-based controller drives the same model without the inner
    // optimizer: a floor showing how much of an episode is decision cost.
    group.bench_function("rule_based_episode_udds", |b| {
        b.iter(|| {
            let mut hev = fresh_hev(0.6);
            let mut rb = RuleBasedController::default();
            let reward = RewardConfig::default();
            simulate(&mut hev, black_box(&cycle), &mut rb, &reward).fuel_g
        })
    });

    group.finish();
}

criterion_group!(benches, bench_episode_throughput);
criterion_main!(benches);
