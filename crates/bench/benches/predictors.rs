//! Throughput of the driving-profile predictors (they run inside the
//! controller's per-step loop).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use drive_cycle::StandardCycle;
use hev_predict::{Ewma, MarkovChain, MlpPredictor, MovingAverage, Predictor};

fn demand_signal() -> Vec<f64> {
    // A realistic demand-like signal derived from UDDS speeds.
    StandardCycle::Udds
        .cycle()
        .speeds_mps()
        .iter()
        .map(|v| v * 800.0)
        .collect()
}

fn bench_predictors(c: &mut Criterion) {
    let signal = demand_signal();
    let mut group = c.benchmark_group("predictors");

    group.bench_function("ewma_observe_predict", |b| {
        let mut p = Ewma::new(0.3);
        let mut i = 0;
        b.iter(|| {
            p.observe(black_box(signal[i % signal.len()]));
            i += 1;
            p.predict()
        })
    });

    group.bench_function("moving_average_observe_predict", |b| {
        let mut p = MovingAverage::new(10);
        let mut i = 0;
        b.iter(|| {
            p.observe(black_box(signal[i % signal.len()]));
            i += 1;
            p.predict()
        })
    });

    group.bench_function("markov_observe_predict", |b| {
        let mut p = MarkovChain::new(-40_000.0, 60_000.0, 12);
        let mut i = 0;
        b.iter(|| {
            p.observe(black_box(signal[i % signal.len()]));
            i += 1;
            p.predict()
        })
    });

    group.bench_function("mlp_observe_predict", |b| {
        let mut p = MlpPredictor::new(4, 8, 0.02, 20_000.0, 1);
        let mut i = 0;
        b.iter(|| {
            p.observe(black_box(signal[i % signal.len()]));
            i += 1;
            p.predict()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
