//! End-to-end experiment benchmarks: full-cycle simulation under each
//! controller, and one training episode of the proposed agent. These are
//! the units the `repro` binary composes into the paper's tables.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use drive_cycle::StandardCycle;
use hev_control::{
    simulate, EcmsController, JointController, JointControllerConfig, RewardConfig,
    RuleBasedController,
};
use hev_model::{HevParams, ParallelHev};

fn fresh_hev() -> ParallelHev {
    ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
}

fn bench_paper_experiments(c: &mut Criterion) {
    let cycle = StandardCycle::Oscar.cycle();
    let reward = RewardConfig::default();
    let mut group = c.benchmark_group("paper_experiments");
    group.sample_size(10);

    group.bench_function("rule_based_oscar_episode", |b| {
        b.iter_batched(
            fresh_hev,
            |mut hev| {
                let mut ctl = RuleBasedController::default();
                simulate(&mut hev, &cycle, &mut ctl, &reward)
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("ecms_oscar_episode", |b| {
        b.iter_batched(
            fresh_hev,
            |mut hev| {
                let mut ctl = EcmsController::default();
                simulate(&mut hev, &cycle, &mut ctl, &reward)
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("joint_rl_oscar_training_episode", |b| {
        b.iter_batched(
            || {
                (
                    fresh_hev(),
                    JointController::new(JointControllerConfig::proposed()),
                )
            },
            |(mut hev, mut agent)| agent.train(&mut hev, &cycle, 1),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("joint_rl_oscar_greedy_episode", |b| {
        let mut agent = JointController::new(JointControllerConfig::proposed());
        let mut hev = fresh_hev();
        agent.train(&mut hev, &cycle, 5);
        b.iter(|| agent.evaluate(&mut hev, &cycle))
    });

    group.finish();
}

criterion_group!(benches, bench_paper_experiments);
criterion_main!(benches);
