//! Ablation studies over the design choices DESIGN.md calls out.

use crate::experiments::{corrected_mpg, fresh_hev, train_eval, ExperimentConfig};
use drive_cycle::{DriveCycle, StandardCycle};
use hev_control::{EpisodeMetrics, JointController, JointControllerConfig, RunSpec, SeedSequence};
use hev_predict::{Ewma, MarkovChain, MlpPredictor, MovingAverage};
use serde::{Deserialize, Serialize};

/// A generic ablation row: a swept value and the resulting metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// The swept parameter value, formatted.
    pub setting: String,
    /// Cumulative reward of the greedy evaluation.
    pub reward: f64,
    /// Charge-corrected MPG.
    pub mpg: f64,
    /// Mean auxiliary utility.
    pub mean_utility: f64,
}

fn row(setting: String, m: &EpisodeMetrics) -> AblationRow {
    AblationRow {
        setting,
        reward: m.total_reward,
        mpg: corrected_mpg(m),
        mean_utility: m.mean_utility(),
    }
}

/// The cycle the ablations run on (UDDS — the longest, most structured
/// of the paper's set).
pub fn ablation_cycle() -> DriveCycle {
    StandardCycle::Udds.cycle()
}

/// Runs one labeled training per setting, fanned across `cfg.jobs`
/// workers. Every setting trains at the same run-0 child seed (the
/// sweep varies the hyperparameter, not the seed), so rows are
/// bit-identical at every worker count.
fn sweep(
    group: &str,
    cycle: &DriveCycle,
    settings: Vec<(String, JointControllerConfig)>,
    cfg: &ExperimentConfig,
) -> Vec<AblationRow> {
    let seed = SeedSequence::new(cfg.seed).child(0);
    let tasks = settings
        .into_iter()
        .map(|(label, c)| RunSpec {
            label: format!("{group}/{label}"),
            seed,
            payload: (label, c),
        })
        .collect();
    cfg.harness().run(group, tasks, |_, _, (label, c)| {
        row(label, &train_eval(c, cycle, cfg))
    })
}

/// A1 — reduced vs full action space (§4.3.2's trade-off claim).
pub fn ablation_action_space(cfg: &ExperimentConfig) -> Vec<AblationRow> {
    sweep(
        "ablation-action-space",
        &ablation_cycle(),
        vec![
            ("reduced [i]".to_string(), JointControllerConfig::proposed()),
            (
                "full [i, R(k), p_aux]".to_string(),
                JointControllerConfig::full_action_space(5, vec![100.0, 600.0, 1_100.0]),
            ),
        ],
        cfg,
    )
}

/// A2 — prediction learning-rate α sweep (Eq. 12).
pub fn ablation_alpha(cfg: &ExperimentConfig) -> Vec<AblationRow> {
    let settings = [0.05, 0.15, 0.30, 0.50, 0.90]
        .iter()
        .map(|&alpha| {
            let mut c = JointControllerConfig::proposed();
            c.predictor_alpha = alpha;
            (format!("alpha = {alpha:.2}"), c)
        })
        .collect();
    sweep("ablation-alpha", &ablation_cycle(), settings, cfg)
}

/// A3 — TD(λ) trace-decay sweep (§4.3.4's algorithm choice).
pub fn ablation_lambda(cfg: &ExperimentConfig) -> Vec<AblationRow> {
    let settings = [0.0, 0.3, 0.6, 0.9, 0.95]
        .iter()
        .map(|&lambda| {
            let mut c = JointControllerConfig::proposed();
            c.td.lambda = lambda;
            (format!("lambda = {lambda:.2}"), c)
        })
        .collect();
    sweep("ablation-lambda", &ablation_cycle(), settings, cfg)
}

/// A4 — auxiliary weight `w` sweep: the fuel/utility Pareto trade-off
/// (§4.3.3).
pub fn ablation_weight(cfg: &ExperimentConfig) -> Vec<AblationRow> {
    let settings = [0.0, 0.1, 0.4, 1.0, 2.5]
        .iter()
        .map(|&w| {
            let mut c = JointControllerConfig::proposed();
            c.reward.aux_weight = w;
            (format!("w = {w:.1}"), c)
        })
        .collect();
    sweep("ablation-weight", &ablation_cycle(), settings, cfg)
}

/// A5 — predictor comparison: EWMA (the paper's choice) vs alternatives
/// including the ANN it mentions. Uses the same jittered-portfolio
/// training protocol as every other experiment.
pub fn ablation_predictor(cfg: &ExperimentConfig) -> Vec<AblationRow> {
    let cycle = ablation_cycle();
    let seed = SeedSequence::new(cfg.seed).child(0);
    let base = {
        let mut c = JointControllerConfig::proposed();
        c.initial_soc = cfg.initial_soc;
        c.seed = seed;
        c
    };
    let portfolio = crate::experiments::jitter_portfolio(&cycle, seed, cfg);
    let rounds = (cfg.episodes / portfolio.len()).max(1);

    let train_with = |predictor_label: usize| -> EpisodeMetrics {
        let mut hev = fresh_hev(cfg.initial_soc);
        match predictor_label {
            0 => {
                let mut a = JointController::with_predictor(base.clone(), Ewma::new(0.3));
                a.train_portfolio(&mut hev, &portfolio, rounds);
                a.evaluate(&mut hev, &cycle)
            }
            1 => {
                let mut a = JointController::with_predictor(base.clone(), MovingAverage::new(10));
                a.train_portfolio(&mut hev, &portfolio, rounds);
                a.evaluate(&mut hev, &cycle)
            }
            2 => {
                let mut a = JointController::with_predictor(
                    base.clone(),
                    MarkovChain::new(-40_000.0, 60_000.0, 12),
                );
                a.train_portfolio(&mut hev, &portfolio, rounds);
                a.evaluate(&mut hev, &cycle)
            }
            _ => {
                let mut a = JointController::with_predictor(
                    base.clone(),
                    MlpPredictor::new(4, 8, 0.02, 20_000.0, seed),
                );
                a.train_portfolio(&mut hev, &portfolio, rounds);
                a.evaluate(&mut hev, &cycle)
            }
        }
    };
    let labels = [
        "ewma (paper)",
        "moving average (10 s)",
        "markov chain",
        "mlp (ann)",
    ];
    let tasks = labels
        .iter()
        .enumerate()
        .map(|(k, label)| RunSpec {
            label: format!("ablation-predictor/{label}"),
            seed,
            payload: k,
        })
        .collect();
    cfg.harness().run("ablation-predictor", tasks, |_, _, k| {
        row(labels[k].to_string(), &train_with(k))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            episodes: 2,
            ..Default::default()
        }
    }

    #[test]
    fn weight_zero_ignores_utility_in_reward() {
        // With w = 0 the reward reduces to −fuel; just verify the sweep
        // produces the requested settings.
        let rows = ablation_weight(&ExperimentConfig {
            episodes: 1,
            ..Default::default()
        });
        assert_eq!(rows.len(), 5);
        assert!(rows[0].setting.contains("0.0"));
    }

    #[test]
    #[ignore = "several minutes of training; run explicitly"]
    fn all_ablations_run() {
        let cfg = tiny();
        assert_eq!(ablation_action_space(&cfg).len(), 2);
        assert_eq!(ablation_alpha(&cfg).len(), 5);
        assert_eq!(ablation_lambda(&cfg).len(), 5);
        assert_eq!(ablation_predictor(&cfg).len(), 4);
    }
}
