//! The `repro --robustness` experiment: fault-severity degradation sweep.
//!
//! Trains the proposed joint controller *clean* on OSCAR (one run per
//! seed-split seed, fanned across the harness exactly like the paper
//! experiments), then evaluates it wrapped in a
//! [`SupervisedPolicy`] under seeded [`FaultPlan`]s of increasing
//! severity, against the rule-based baseline facing the *identical*
//! fault trajectories. Reported per severity: charge-corrected fuel,
//! mean auxiliary utility, cycle completion, and the supervisor's
//! [`DegradationReport`] (rejections and fallback-tier activations).
//!
//! Determinism: fault-plan seeds are split from the experiment seed by
//! run index through a dedicated [`SeedSequence`], so the table is
//! bit-identical at every `--jobs` value — and the same plan seed is
//! reused for every severity and both controllers, which makes columns
//! comparable within a row.

use crate::experiments::{self, corrected_fuel_g, ExperimentConfig};
use drive_cycle::StandardCycle;
use hev_control::{
    simulate_with_faults, train_portfolio_checkpointed, CheckpointSpec, ControllerSnapshot,
    DegradationReport, EpisodeMetrics, FaultConfig, FaultPlan, JointController,
    JointControllerConfig, RewardConfig, RuleBasedController, SeedSequence, SupervisedPolicy,
};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Tag XORed into the experiment seed to derive the fault-plan seed
/// family, keeping it disjoint from the training-seed family.
pub const FAULT_SEED_TAG: u64 = 0x4641_554C_5453_0001; // "FAULTS"

/// The default severity sweep (0 = healthy reference).
pub const DEFAULT_SEVERITIES: [f64; 4] = [0.0, 0.25, 0.5, 1.0];

/// One severity level of the degradation table, aggregated over
/// `cfg.runs` independently trained controllers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessRow {
    /// Fault severity (see [`FaultConfig::at_severity`]).
    pub severity: f64,
    /// Charge-corrected fuel of the supervised proposed controller, g
    /// (mean across runs).
    pub proposed_fuel_g: f64,
    /// Charge-corrected fuel of the rule-based baseline under the same
    /// fault plans, g (mean across runs).
    pub rule_fuel_g: f64,
    /// Mean auxiliary utility of the supervised proposed controller.
    pub proposed_utility: f64,
    /// Mean auxiliary utility of the rule-based baseline.
    pub rule_utility: f64,
    /// Runs in which the supervised controller finished every step of
    /// the faulted cycle.
    pub completed_runs: usize,
    /// Total runs evaluated.
    pub runs: usize,
    /// The supervisor's intervention counters, summed across runs.
    pub degradation: DegradationReport,
}

/// Where (and how often) the clean training of the sweep checkpoints
/// (`repro --checkpoint-dir/--checkpoint-every/--resume`). One file per
/// run inside `dir`.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointOptions {
    /// Directory holding one checkpoint file per training run.
    pub dir: PathBuf,
    /// Checkpoint every this many episodes.
    pub every: usize,
    /// Resume from existing checkpoint files instead of starting fresh.
    pub resume: bool,
}

/// Trains one clean proposed controller per split seed on the OSCAR
/// jitter portfolio and returns the trained snapshots (fanned across
/// `cfg.jobs` workers; bit-identical at every worker count).
pub fn train_clean_snapshots(cfg: &ExperimentConfig) -> Vec<ControllerSnapshot> {
    train_clean_snapshots_with(cfg, None)
}

/// [`train_clean_snapshots`] with optional crash-tolerant checkpointing:
/// each run saves `robustness_run<k>.json` under the checkpoint
/// directory every `every` episodes, and — with `resume` — picks up a
/// prior run's episode count instead of retraining from zero (resumed
/// training is bit-identical to uninterrupted, see
/// [`hev_control::checkpoint`]).
pub fn train_clean_snapshots_with(
    cfg: &ExperimentConfig,
    ckpt: Option<&CheckpointOptions>,
) -> Vec<ControllerSnapshot> {
    let cycle = StandardCycle::Oscar.cycle();
    cfg.harness()
        .run_seeded("robustness/train", cfg.seed, cfg.runs.max(1), |k, seed| {
            let mut ccfg = JointControllerConfig::proposed();
            ccfg.initial_soc = cfg.initial_soc;
            ccfg.seed = seed;
            let mut hev = experiments::fresh_hev(cfg.initial_soc);
            let portfolio = experiments::jitter_portfolio(&cycle, seed, cfg);
            let rounds = (cfg.episodes / portfolio.len()).max(1);
            let episodes = rounds * portfolio.len();
            let spec = ckpt.map(|c| CheckpointSpec {
                path: c.dir.join(format!("robustness_run{k}.json")),
                every: c.every,
                resume: c.resume,
            });
            let (agent, _) =
                train_portfolio_checkpointed(ccfg, &mut hev, &portfolio, episodes, spec.as_ref())
                    // hevlint::allow(panic::expect, the experiment harness aborts on checkpoint I/O failure by design; training results would be unusable)
                    .expect("checkpoint file IO failed");
            agent.snapshot()
        })
}

/// Evaluates one trained controller, supervised, on the faulted cycle.
fn eval_supervised(
    snapshot: &ControllerSnapshot,
    cycle: &drive_cycle::DriveCycle,
    cfg: &ExperimentConfig,
    fault_cfg: FaultConfig,
    plan_seed: u64,
) -> EpisodeMetrics {
    let mut agent = JointController::from_snapshot(snapshot.clone());
    agent.set_training(false);
    let mut supervised = SupervisedPolicy::new(agent);
    let mut plan = FaultPlan::new(fault_cfg, plan_seed);
    let mut hev = experiments::fresh_hev(cfg.initial_soc);
    plan.degrade_plant(&mut hev);
    simulate_with_faults(
        &mut hev,
        cycle,
        &mut supervised,
        &RewardConfig::default(),
        Some(&mut plan),
    )
}

/// Evaluates the rule-based baseline on the same faulted cycle (same
/// plan seed, so the fault trajectory matches the supervised run's).
fn eval_rule_based(
    cycle: &drive_cycle::DriveCycle,
    cfg: &ExperimentConfig,
    fault_cfg: FaultConfig,
    plan_seed: u64,
) -> EpisodeMetrics {
    let mut rule = RuleBasedController::default();
    let mut plan = FaultPlan::new(fault_cfg, plan_seed);
    let mut hev = experiments::fresh_hev(cfg.initial_soc);
    plan.degrade_plant(&mut hev);
    simulate_with_faults(
        &mut hev,
        cycle,
        &mut rule,
        &RewardConfig::default(),
        Some(&mut plan),
    )
}

/// The degradation sweep over the default severities.
pub fn robustness(cfg: &ExperimentConfig) -> Vec<RobustnessRow> {
    robustness_at(cfg, &DEFAULT_SEVERITIES)
}

/// The degradation sweep over explicit severity levels.
pub fn robustness_at(cfg: &ExperimentConfig, severities: &[f64]) -> Vec<RobustnessRow> {
    robustness_with(cfg, severities, None)
}

/// The degradation sweep with optional checkpointed training.
pub fn robustness_with(
    cfg: &ExperimentConfig,
    severities: &[f64],
    ckpt: Option<&CheckpointOptions>,
) -> Vec<RobustnessRow> {
    let cycle = StandardCycle::Oscar.cycle();
    let snapshots = train_clean_snapshots_with(cfg, ckpt);
    let plan_seeds = SeedSequence::new(cfg.seed ^ FAULT_SEED_TAG);
    severities
        .iter()
        .map(|&severity| {
            let fault_cfg = FaultConfig::at_severity(severity);
            let mut degradation = DegradationReport::default();
            let mut completed = 0;
            let mut p_fuel = 0.0;
            let mut r_fuel = 0.0;
            let mut p_util = 0.0;
            let mut r_util = 0.0;
            for (k, snapshot) in snapshots.iter().enumerate() {
                let plan_seed = plan_seeds.child(k as u64);
                let p = eval_supervised(snapshot, &cycle, cfg, fault_cfg, plan_seed);
                let r = eval_rule_based(&cycle, cfg, fault_cfg, plan_seed);
                if p.steps == cycle.len() {
                    completed += 1;
                }
                if let Some(d) = &p.degradation {
                    degradation = degradation.merged(d);
                }
                p_fuel += corrected_fuel_g(&p);
                r_fuel += corrected_fuel_g(&r);
                p_util += p.mean_utility();
                r_util += r.mean_utility();
            }
            let n = snapshots.len() as f64;
            RobustnessRow {
                severity,
                proposed_fuel_g: p_fuel / n,
                rule_fuel_g: r_fuel / n,
                proposed_utility: p_util / n,
                rule_utility: r_util / n,
                completed_runs: completed,
                runs: snapshots.len(),
                degradation,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            episodes: 4,
            runs: 2,
            jobs: 0,
            ..Default::default()
        }
    }

    #[test]
    fn sweep_completes_every_faulted_cycle() {
        let rows = robustness_at(&tiny(), &[0.0, 1.0]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(
                row.completed_runs, row.runs,
                "severity {}: supervised controller missed steps",
                row.severity
            );
            assert!(row.proposed_fuel_g.is_finite());
            assert!(row.rule_fuel_g.is_finite());
        }
        // Healthy reference: zero interventions beyond counting.
        assert_eq!(rows[0].severity, 0.0);
        assert!(rows[0].degradation.decisions > 0);
    }

    #[test]
    fn sweep_is_deterministic_across_worker_counts() {
        let serial = robustness_at(&ExperimentConfig { jobs: 1, ..tiny() }, &[0.5]);
        let parallel = robustness_at(&ExperimentConfig { jobs: 4, ..tiny() }, &[0.5]);
        assert_eq!(serial, parallel);
    }
}
