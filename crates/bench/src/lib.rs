//! Benchmark harness for the DAC'15 joint HEV control reproduction.
//!
//! [`experiments`] regenerates every table and figure of the paper's
//! evaluation (§5); [`ablations`] sweeps the design choices DESIGN.md
//! calls out. The `repro` binary pretty-prints them; the Criterion
//! benches in `benches/` measure the substrate's throughput.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod experiments;
pub mod perf;
pub mod profile;
pub mod robustness;

pub use ablations::AblationRow;
pub use experiments::{ExperimentConfig, Fig2Row, Fig3Row, Table1Row, Table2Row};
pub use perf::{StepThroughputReport, ThroughputSample, Workload};
pub use profile::{run_profile, ProfileResult};
pub use robustness::RobustnessRow;
