//! Step-throughput measurement for the staged evaluation pipeline.
//!
//! The `repro --bench-json PATH` flag uses this module to record how fast
//! the joint controller's decision loop runs end to end: wall-clock
//! seconds, simulated control steps per second, and how many
//! peek-equivalent model evaluations each step costs (feasibility
//! probes, inner-optimization grid points, ternary refinements — see
//! [`hev_trace::evals`]). The report is machine-readable JSON so CI
//! can archive it and a later run can compare against a committed
//! baseline with [`StepThroughputReport::with_baseline`], or enforce a
//! regression bound with [`StepThroughputReport::guard_evals`].
//!
//! The measured workload is deliberately single-threaded: one
//! [`JointController`] trained for a few episodes on UDDS and then
//! evaluated once, on one thread, so the numbers are per-core throughput
//! and the thread-local evaluation counter sees every evaluation.

use crate::experiments::fresh_hev;
use drive_cycle::StandardCycle;
use hev_control::{JointController, JointControllerConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Version stamp for the JSON schema; bump on breaking layout changes.
pub const SCHEMA_VERSION: u32 = 1;

/// What was run to produce a [`ThroughputSample`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Drive cycle name (e.g. `"UDDS"`).
    pub cycle: String,
    /// Number of training episodes before the timed evaluation episode.
    pub train_episodes: usize,
    /// RNG seed for the controller.
    pub seed: u64,
}

/// One timed run of the workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputSample {
    /// Wall-clock seconds for the whole workload (train + evaluate).
    pub wall_s: f64,
    /// Total simulated control steps across all episodes.
    pub steps: u64,
    /// `steps / wall_s`.
    pub steps_per_sec: f64,
    /// Total peek-equivalent model evaluations recorded.
    pub evals: u64,
    /// `evals / steps` — the quantity the staged pipeline amortizes.
    pub evals_per_step: f64,
}

/// The machine-readable report written by `repro --bench-json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepThroughputReport {
    /// JSON layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The workload both samples ran.
    pub workload: Workload,
    /// The freshly measured sample.
    pub current: ThroughputSample,
    /// Optional pre-recorded sample to compare against.
    pub baseline: Option<ThroughputSample>,
    /// `current.steps_per_sec / baseline.steps_per_sec` when a baseline
    /// is present.
    pub speedup: Option<f64>,
}

impl StepThroughputReport {
    /// Builds a report with no baseline attached.
    pub fn new(workload: Workload, current: ThroughputSample) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            workload,
            current,
            baseline: None,
            speedup: None,
        }
    }

    /// Attaches a baseline sample and computes the throughput ratio.
    pub fn with_baseline(mut self, baseline: ThroughputSample) -> Self {
        self.speedup = if baseline.steps_per_sec > 0.0 {
            Some(self.current.steps_per_sec / baseline.steps_per_sec)
        } else {
            None
        };
        self.baseline = Some(baseline);
        self
    }

    /// Enforces the telemetry-overhead guard against the attached
    /// baseline.
    ///
    /// The guarded quantity is `evals_per_step`, not wall-clock: model
    /// evaluations per control step are deterministic for a fixed
    /// workload, so the guard gives the same verdict on a loaded CI
    /// runner as on a quiet laptop. Telemetry is designed to be
    /// zero-overhead when disabled; this catches anyone accidentally
    /// adding per-step evaluation work to the disabled path.
    ///
    /// Returns `Err` with a human-readable explanation when
    /// `current.evals_per_step` exceeds the baseline by more than
    /// `max_regression_pct` percent. A missing baseline passes (nothing
    /// to compare against).
    pub fn guard_evals(&self, max_regression_pct: f64) -> Result<(), String> {
        let Some(baseline) = &self.baseline else {
            return Ok(());
        };
        if baseline.evals_per_step <= 0.0 {
            return Ok(());
        }
        let regression_pct = (self.current.evals_per_step / baseline.evals_per_step - 1.0) * 100.0;
        if regression_pct > max_regression_pct {
            return Err(format!(
                "evals/step regressed {regression_pct:.3}% (current {:.4} vs baseline {:.4}, \
                 allowed {max_regression_pct}%)",
                self.current.evals_per_step, baseline.evals_per_step
            ));
        }
        Ok(())
    }
}

/// Runs the standard throughput workload and times it.
///
/// Trains a reduced-action-space [`JointController`] for
/// `train_episodes` episodes on UDDS, then evaluates one greedy episode,
/// all on the calling thread. Every simulated step — training and
/// evaluation alike — goes through the full staged pipeline (action
/// mask, myopic argmax, inner-optimizer resolve, apply), so the
/// evaluation counter reflects production per-step cost.
pub fn measure_step_throughput(train_episodes: usize, seed: u64) -> (Workload, ThroughputSample) {
    let cycle = StandardCycle::Udds.cycle();
    let mut cfg = JointControllerConfig::proposed();
    cfg.seed = seed;
    let mut agent = JointController::new(cfg);
    let mut hev = fresh_hev(0.6);

    hev_trace::evals::reset();
    let t0 = Instant::now();
    agent.train(&mut hev, &cycle, train_episodes);
    let metrics = agent.evaluate(&mut hev, &cycle);
    let wall_s = t0.elapsed().as_secs_f64();
    let evals = hev_trace::evals::count();

    let steps_per_episode = metrics.steps as u64;
    let steps = steps_per_episode * (train_episodes as u64 + 1);
    let workload = Workload {
        cycle: "UDDS".to_string(),
        train_episodes,
        seed,
    };
    let sample = ThroughputSample {
        wall_s,
        steps,
        steps_per_sec: if wall_s > 0.0 {
            steps as f64 / wall_s
        } else {
            0.0
        },
        evals,
        evals_per_step: if steps > 0 {
            evals as f64 / steps as f64
        } else {
            0.0
        },
    };
    (workload, sample)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_produces_consistent_sample() {
        let (workload, sample) = measure_step_throughput(1, 42);
        assert_eq!(workload.cycle, "UDDS");
        assert_eq!(workload.train_episodes, 1);
        assert!(sample.steps > 0);
        assert!(sample.wall_s > 0.0);
        assert!(sample.steps_per_sec > 0.0);
        assert!(
            sample.evals > 0,
            "instrumented evaluations must be recorded"
        );
        assert!((sample.evals_per_step - sample.evals as f64 / sample.steps as f64).abs() < 1e-12);
    }

    #[test]
    fn report_round_trips_through_json() {
        let workload = Workload {
            cycle: "UDDS".to_string(),
            train_episodes: 4,
            seed: 42,
        };
        let current = ThroughputSample {
            wall_s: 0.5,
            steps: 6850,
            steps_per_sec: 13700.0,
            evals: 980_000,
            evals_per_step: 143.1,
        };
        let baseline = ThroughputSample {
            wall_s: 0.75,
            steps: 6850,
            steps_per_sec: 9133.3,
            evals: 1_610_000,
            evals_per_step: 235.0,
        };
        let report = StepThroughputReport::new(workload, current).with_baseline(baseline);
        let text = serde_json::to_string(&report).unwrap();
        let back: StepThroughputReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
        let speedup = back.speedup.unwrap();
        assert!((speedup - 13700.0 / 9133.3).abs() < 1e-9);
    }

    #[test]
    fn guard_passes_within_budget_and_fails_beyond() {
        let workload = Workload {
            cycle: "UDDS".to_string(),
            train_episodes: 4,
            seed: 42,
        };
        let mk = |evals_per_step: f64| ThroughputSample {
            wall_s: 1.0,
            steps: 1000,
            steps_per_sec: 1000.0,
            evals: (evals_per_step * 1000.0) as u64,
            evals_per_step,
        };
        let report =
            StepThroughputReport::new(workload.clone(), mk(101.0)).with_baseline(mk(100.0));
        assert!(report.guard_evals(2.0).is_ok(), "1% regression within 2%");
        let report =
            StepThroughputReport::new(workload.clone(), mk(103.0)).with_baseline(mk(100.0));
        let err = report.guard_evals(2.0).unwrap_err();
        assert!(err.contains("regressed"), "message explains: {err}");
        let report = StepThroughputReport::new(workload, mk(103.0));
        assert!(report.guard_evals(2.0).is_ok(), "no baseline passes");
    }
}
