//! Step-throughput measurement for the staged evaluation pipeline.
//!
//! The `repro --bench-json PATH` flag uses this module to record how fast
//! the joint controller's decision loop runs end to end: wall-clock
//! seconds, simulated control steps per second, and how many
//! peek-equivalent model evaluations each step costs (feasibility
//! probes, inner-optimization grid points, ternary refinements — see
//! [`hev_trace::evals`]). The report is machine-readable JSON so CI
//! can archive it and a later run can compare against a committed
//! baseline with [`StepThroughputReport::with_baseline`], or enforce a
//! regression bound with [`StepThroughputReport::guard_evals`].
//!
//! The measured workload is deliberately single-threaded: one
//! [`JointController`] trained for a few episodes on UDDS and then
//! evaluated once, on one thread, so the numbers are per-core throughput
//! and the thread-local evaluation counter sees every evaluation.

use crate::experiments::fresh_hev;
use drive_cycle::StandardCycle;
use hev_control::{
    split_seed, train_portfolio_wave, CyclePlan, JointController, JointControllerConfig,
    WaveTrainLane,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Version stamp for the JSON schema; bump on breaking layout changes.
///
/// * **v1** — wall-clock, steps, steps/s, evals, evals/step.
/// * **v2** — adds the batched-kernel lane accounting
///   ([`ThroughputSample::batch_lane_evals`],
///   [`ThroughputSample::batch_calls`],
///   [`ThroughputSample::batch_width`]). v1 reports parse with the new
///   fields defaulting to zero, so committed v1 baselines keep working.
/// * **v3** — adds the amortization accounting
///   ([`ThroughputSample::ctx_rebuilds`], defaulting to zero) and the
///   lockstep wave width ([`Workload::wave_width`], defaulting to one).
///   v1/v2 reports keep parsing; their zero/one defaults describe the
///   per-episode, rebuild-per-step workloads those versions measured.
pub(crate) const SCHEMA_VERSION: u32 = 3;

/// What was run to produce a [`ThroughputSample`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Drive cycle name (e.g. `"UDDS"`).
    pub cycle: String,
    /// Number of training episodes before the timed evaluation episode.
    pub train_episodes: usize,
    /// RNG seed for the controller.
    pub seed: u64,
    /// Lockstep wave width: how many independent controllers trained
    /// together sharing the precomputed cycle plan. Zero (the serde
    /// default a pre-v3 report deserializes to) and one both denote the
    /// single-controller workload.
    #[serde(default)]
    pub wave_width: usize,
}

/// One timed run of the workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputSample {
    /// Wall-clock seconds for the whole workload (train + evaluate).
    pub wall_s: f64,
    /// Total simulated control steps across all episodes.
    pub steps: u64,
    /// `steps / wall_s`.
    pub steps_per_sec: f64,
    /// Total peek-equivalent model evaluations recorded.
    pub evals: u64,
    /// `evals / steps` — the quantity the staged pipeline amortizes.
    pub evals_per_step: f64,
    /// Evaluations that went through the batched candidate kernel (one
    /// per batch *lane*, a subset of `evals`). Zero in v1 reports and on
    /// the scalar reference path.
    #[serde(default)]
    pub batch_lane_evals: u64,
    /// Batched-kernel invocations. Zero in v1 reports.
    #[serde(default)]
    pub batch_calls: u64,
    /// `batch_lane_evals / batch_calls` — the mean batch width. Zero
    /// when no batch call was made (v1 reports, scalar reference path).
    #[serde(default)]
    pub batch_width: f64,
    /// Evaluation-context rebuilds during the workload. The cycle-level
    /// context table collapses this to one per (cycle, vehicle-config)
    /// pair; the pre-v3 workloads rebuilt once per simulated step. Zero
    /// in v1/v2 reports (not recorded).
    #[serde(default)]
    pub ctx_rebuilds: u64,
}

/// The machine-readable report written by `repro --bench-json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepThroughputReport {
    /// JSON layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The workload both samples ran.
    pub workload: Workload,
    /// The freshly measured sample.
    pub current: ThroughputSample,
    /// Optional pre-recorded sample to compare against.
    pub baseline: Option<ThroughputSample>,
    /// `current.steps_per_sec / baseline.steps_per_sec` when a baseline
    /// is present.
    pub speedup: Option<f64>,
}

impl StepThroughputReport {
    /// Builds a report with no baseline attached.
    pub fn new(workload: Workload, current: ThroughputSample) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            workload,
            current,
            baseline: None,
            speedup: None,
        }
    }

    /// Attaches a baseline sample and computes the throughput ratio.
    pub fn with_baseline(mut self, baseline: ThroughputSample) -> Self {
        self.speedup = if baseline.steps_per_sec > 0.0 {
            Some(self.current.steps_per_sec / baseline.steps_per_sec)
        } else {
            None
        };
        self.baseline = Some(baseline);
        self
    }

    /// Enforces the telemetry-overhead guard against the attached
    /// baseline.
    ///
    /// The guarded quantity is `evals_per_step`, not wall-clock: model
    /// evaluations per control step are deterministic for a fixed
    /// workload, so the guard gives the same verdict on a loaded CI
    /// runner as on a quiet laptop. Telemetry is designed to be
    /// zero-overhead when disabled; this catches anyone accidentally
    /// adding per-step evaluation work to the disabled path.
    ///
    /// Returns `Err` with a human-readable explanation when
    /// `current.evals_per_step` exceeds the baseline by more than
    /// `max_regression_pct` percent. A missing baseline passes (nothing
    /// to compare against).
    pub fn guard_evals(&self, max_regression_pct: f64) -> Result<(), String> {
        let Some(baseline) = &self.baseline else {
            return Ok(());
        };
        if baseline.evals_per_step <= 0.0 {
            return Ok(());
        }
        let regression_pct = (self.current.evals_per_step / baseline.evals_per_step - 1.0) * 100.0;
        if regression_pct > max_regression_pct {
            return Err(format!(
                "evals/step regressed {regression_pct:.3}% (current {:.4} vs baseline {:.4}, \
                 allowed {max_regression_pct}%)",
                self.current.evals_per_step, baseline.evals_per_step
            ));
        }
        Ok(())
    }

    /// Enforces a catastrophic-slowdown floor on wall-clock throughput
    /// against the attached baseline.
    ///
    /// Unlike [`guard_evals`](Self::guard_evals), `steps_per_sec` is
    /// machine- and load-dependent, so this guard is deliberately loose:
    /// it fails only when current throughput falls below `min_fraction`
    /// of the baseline (e.g. `0.25` = a 4× slowdown), which no CI-runner
    /// noise explains — only a genuine hot-loop regression does. A
    /// missing baseline passes.
    pub fn guard_steps_per_sec(&self, min_fraction: f64) -> Result<(), String> {
        let Some(baseline) = &self.baseline else {
            return Ok(());
        };
        if baseline.steps_per_sec <= 0.0 {
            return Ok(());
        }
        let fraction = self.current.steps_per_sec / baseline.steps_per_sec;
        if fraction < min_fraction {
            return Err(format!(
                "steps/s collapsed to {fraction:.2}x of baseline (current {:.0} vs baseline \
                 {:.0}, floor {min_fraction}x)",
                self.current.steps_per_sec, baseline.steps_per_sec
            ));
        }
        Ok(())
    }
}

/// Runs the standard throughput workload and times it.
///
/// Trains a reduced-action-space [`JointController`] for
/// `train_episodes` episodes on UDDS, then evaluates one greedy episode,
/// all on the calling thread. Every simulated step — training and
/// evaluation alike — goes through the full staged pipeline (action
/// mask, myopic argmax, inner-optimizer resolve, apply), so the
/// evaluation counter reflects production per-step cost.
///
/// `scalar_reference` forces the scalar reference implementation of the
/// inner optimization (no batched kernel), which measures the pre-batch
/// code path — the denominator of the batching speedup.
///
/// `wave` (≥ 1) trains that many independent controllers in lockstep on
/// the shared cycle plan, fusing their per-step candidate evaluations
/// into one wide batch; `steps` then counts every lane's steps, so
/// `steps_per_sec` measures the wave's aggregate throughput on the one
/// measuring thread. Lane 0 keeps the caller's seed (the one-lane
/// workload is the same measurement as before); extra lanes split their
/// own streams from it.
pub fn measure_step_throughput(
    train_episodes: usize,
    seed: u64,
    scalar_reference: bool,
    wave: usize,
) -> (Workload, ThroughputSample) {
    let wave = wave.max(1);
    let cycle = StandardCycle::Udds.cycle();
    let mut agents = Vec::with_capacity(wave);
    let mut hevs = Vec::with_capacity(wave);
    for lane in 0..wave {
        let mut cfg = JointControllerConfig::proposed();
        cfg.seed = if lane == 0 {
            seed
        } else {
            split_seed(seed, lane as u64)
        };
        cfg.inner.scalar_reference = scalar_reference;
        agents.push(JointController::new(cfg));
        hevs.push(fresh_hev(0.6));
    }

    hev_trace::evals::reset();
    let t0 = Instant::now();
    // The plan build is inside the timed region: it is exactly the cost
    // the table amortizes across every lane and episode.
    let plans = vec![CyclePlan::new(&hevs[0], &cycle)];
    let mut lanes: Vec<WaveTrainLane<'_>> = agents
        .iter_mut()
        .zip(hevs.iter_mut())
        .map(|(agent, hev)| WaveTrainLane {
            agent,
            hev,
            plans: &plans,
            telemetry: None,
        })
        .collect();
    train_portfolio_wave(&mut lanes, train_episodes);
    drop(lanes);
    let mut steps = 0u64;
    for (agent, hev) in agents.iter_mut().zip(hevs.iter_mut()) {
        let metrics = agent.evaluate_planned(hev, &plans[0]);
        steps += metrics.steps as u64 * (train_episodes as u64 + 1);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let evals = hev_trace::evals::count();
    let batch_lane_evals = hev_trace::evals::batch_lanes();
    let batch_calls = hev_trace::evals::batch_calls();
    let ctx_rebuilds = hev_trace::evals::ctx_rebuilds();

    let workload = Workload {
        cycle: "UDDS".to_string(),
        train_episodes,
        seed,
        wave_width: wave,
    };
    let sample = ThroughputSample {
        wall_s,
        steps,
        steps_per_sec: if wall_s > 0.0 {
            steps as f64 / wall_s
        } else {
            0.0
        },
        evals,
        evals_per_step: if steps > 0 {
            evals as f64 / steps as f64
        } else {
            0.0
        },
        batch_lane_evals,
        batch_calls,
        batch_width: if batch_calls > 0 {
            batch_lane_evals as f64 / batch_calls as f64
        } else {
            0.0
        },
        ctx_rebuilds,
    };
    (workload, sample)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(evals_per_step: f64) -> ThroughputSample {
        ThroughputSample {
            wall_s: 1.0,
            steps: 1000,
            steps_per_sec: 1000.0,
            evals: (evals_per_step * 1000.0) as u64,
            evals_per_step,
            batch_lane_evals: 0,
            batch_calls: 0,
            batch_width: 0.0,
            ctx_rebuilds: 0,
        }
    }

    #[test]
    fn measurement_produces_consistent_sample() {
        let (workload, sample) = measure_step_throughput(1, 42, false, 1);
        assert_eq!(workload.cycle, "UDDS");
        assert_eq!(workload.train_episodes, 1);
        assert_eq!(workload.wave_width, 1);
        assert!(sample.steps > 0);
        assert!(sample.wall_s > 0.0);
        assert!(sample.steps_per_sec > 0.0);
        assert!(
            sample.evals > 0,
            "instrumented evaluations must be recorded"
        );
        assert!((sample.evals_per_step - sample.evals as f64 / sample.steps as f64).abs() < 1e-12);
        // The default path runs through the batched kernel.
        assert!(sample.batch_calls > 0, "batched kernel must be exercised");
        assert!(sample.batch_lane_evals <= sample.evals);
        assert!(
            (sample.batch_width - sample.batch_lane_evals as f64 / sample.batch_calls as f64).abs()
                < 1e-12
        );
    }

    #[test]
    fn scalar_reference_measurement_bypasses_the_batched_kernel() {
        let (_, sample) = measure_step_throughput(0, 42, true, 1);
        assert!(sample.evals > 0);
        assert_eq!(sample.batch_lane_evals, 0);
        assert_eq!(sample.batch_calls, 0);
        assert_eq!(sample.batch_width, 0.0);
    }

    #[test]
    fn context_table_collapses_rebuilds_to_one_per_cycle() {
        let (_, sample) = measure_step_throughput(1, 42, false, 1);
        // One UDDS cycle, one vehicle config: the whole workload (train
        // + evaluate) must rebuild its context exactly once — the plan
        // build. Anything above one means a per-step rebuild leaked back
        // into the planned loop.
        assert_eq!(
            sample.ctx_rebuilds, 1,
            "expected one context-table build for the whole workload"
        );
    }

    #[test]
    fn wave_measurement_fuses_lanes_and_shares_the_plan() {
        let (w1, s1) = measure_step_throughput(1, 42, false, 1);
        let (w4, s4) = measure_step_throughput(1, 42, false, 4);
        assert_eq!(w4.wave_width, 4);
        // Four lanes simulate four times the steps off one shared plan
        // build, and fusing widens the mean batch without changing the
        // per-lane work (lane 0 repeats the one-lane workload exactly).
        assert_eq!(s4.steps, 4 * s1.steps);
        assert_eq!(s4.ctx_rebuilds, 1);
        assert!(
            s4.batch_width > s1.batch_width,
            "fused waves must widen the mean batch: {} vs {}",
            s4.batch_width,
            s1.batch_width
        );
        assert_eq!(w1.cycle, w4.cycle);
    }

    /// Lockstep fusion rearranges evaluations into wider batches but must
    /// never change how many there are: the wave's total equals the sum of
    /// the same lanes measured one at a time.
    #[test]
    fn wave_evals_equal_the_sum_of_sequential_lane_evals() {
        let (_, wave) = measure_step_throughput(1, 42, false, 3);
        let mut sequential = 0u64;
        for lane in 0..3u64 {
            let lane_seed = if lane == 0 { 42 } else { split_seed(42, lane) };
            let (_, s) = measure_step_throughput(1, lane_seed, false, 1);
            sequential += s.evals;
        }
        assert_eq!(
            wave.evals, sequential,
            "fused waves must do exactly the sequential lanes' work"
        );
    }

    #[test]
    fn report_round_trips_through_json() {
        let workload = Workload {
            cycle: "UDDS".to_string(),
            train_episodes: 4,
            seed: 42,
            wave_width: 8,
        };
        let current = ThroughputSample {
            wall_s: 0.5,
            steps: 6850,
            steps_per_sec: 13700.0,
            evals: 980_000,
            evals_per_step: 143.1,
            batch_lane_evals: 910_000,
            batch_calls: 65_000,
            batch_width: 14.0,
            ctx_rebuilds: 1,
        };
        let baseline = ThroughputSample {
            wall_s: 0.75,
            steps: 6850,
            steps_per_sec: 9133.3,
            evals: 1_610_000,
            evals_per_step: 235.0,
            batch_lane_evals: 0,
            batch_calls: 0,
            batch_width: 0.0,
            ctx_rebuilds: 0,
        };
        let report = StepThroughputReport::new(workload, current).with_baseline(baseline);
        let text = serde_json::to_string(&report).unwrap();
        let back: StepThroughputReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
        let speedup = back.speedup.unwrap();
        assert!((speedup - 13700.0 / 9133.3).abs() < 1e-9);
    }

    /// Golden test for the v1 reader: a committed schema-v1 report (no
    /// batch fields) must keep parsing, with the v2 lane-accounting
    /// fields defaulting to zero and every v1 field preserved.
    #[test]
    fn v1_report_parses_with_zero_batch_fields() {
        let v1 = r#"{"schema_version": 1,
            "workload": {"cycle": "UDDS", "train_episodes": 4, "seed": 42},
            "current": {"wall_s": 0.027252976, "steps": 6845,
                        "steps_per_sec": 251165.2305421617,
                        "evals": 987817, "evals_per_step": 144.31219868517167},
            "baseline": {"wall_s": 0.041881, "steps": 6845,
                         "steps_per_sec": 163439.26840333323,
                         "evals": 1062241, "evals_per_step": 155.18495252008765},
            "speedup": 1.5367496012178634}"#;
        let report: StepThroughputReport = serde_json::from_str(v1).expect("v1 reports parse");
        assert_eq!(report.schema_version, 1);
        assert_eq!(report.current.steps, 6845);
        assert_eq!(report.current.evals, 987_817);
        assert!((report.current.evals_per_step - 144.31219868517167).abs() < 1e-12);
        assert_eq!(report.current.batch_lane_evals, 0);
        assert_eq!(report.current.batch_calls, 0);
        assert_eq!(report.current.batch_width, 0.0);
        assert_eq!(report.current.ctx_rebuilds, 0);
        assert_eq!(report.workload.wave_width, 0, "pre-v3 default: single lane");
        let baseline = report.baseline.expect("baseline survives");
        assert_eq!(baseline.evals, 1_062_241);
        assert_eq!(baseline.batch_lane_evals, 0);
        // The v1 report still guards: both bounds work against it.
        assert!(report.guard_evals(10.0).is_ok());
        assert!(report.guard_steps_per_sec(0.25).is_ok());
    }

    /// Golden test for the v2 reader: a committed schema-v2 report (lane
    /// accounting but no amortization fields) must keep parsing, with
    /// `ctx_rebuilds` and `wave_width` defaulting to zero (zero width
    /// denotes a pre-v3 single-lane workload), and every v2 field
    /// preserved.
    #[test]
    fn v2_report_parses_with_defaulted_amortization_fields() {
        let v2 = r#"{"schema_version": 2,
            "workload": {"cycle": "UDDS", "train_episodes": 4, "seed": 42},
            "current": {"wall_s": 0.026186898, "steps": 6845,
                        "steps_per_sec": 261390.2639946443,
                        "evals": 751209, "evals_per_step": 109.74565376187,
                        "batch_lane_evals": 696841, "batch_calls": 49636,
                        "batch_width": 14.039043033282295},
            "baseline": null, "speedup": null}"#;
        let report: StepThroughputReport = serde_json::from_str(v2).expect("v2 reports parse");
        assert_eq!(report.schema_version, 2);
        assert_eq!(report.current.steps, 6845);
        assert_eq!(report.current.batch_lane_evals, 696_841);
        assert_eq!(report.current.batch_calls, 49_636);
        assert_eq!(report.current.ctx_rebuilds, 0, "v3 field defaults to zero");
        assert_eq!(report.workload.wave_width, 0, "pre-v3 default: single lane");
        assert!(report.guard_evals(10.0).is_ok());
        assert!(report.guard_steps_per_sec(0.25).is_ok());
    }

    #[test]
    fn guard_passes_within_budget_and_fails_beyond() {
        let workload = Workload {
            cycle: "UDDS".to_string(),
            train_episodes: 4,
            seed: 42,
            wave_width: 1,
        };
        let report =
            StepThroughputReport::new(workload.clone(), sample(101.0)).with_baseline(sample(100.0));
        assert!(report.guard_evals(2.0).is_ok(), "1% regression within 2%");
        let report =
            StepThroughputReport::new(workload.clone(), sample(103.0)).with_baseline(sample(100.0));
        let err = report.guard_evals(2.0).unwrap_err();
        assert!(err.contains("regressed"), "message explains: {err}");
        let report = StepThroughputReport::new(workload, sample(103.0));
        assert!(report.guard_evals(2.0).is_ok(), "no baseline passes");
    }

    #[test]
    fn steps_guard_trips_only_on_catastrophic_slowdown() {
        let workload = Workload {
            cycle: "UDDS".to_string(),
            train_episodes: 4,
            seed: 42,
            wave_width: 1,
        };
        let mk = |steps_per_sec: f64| ThroughputSample {
            steps_per_sec,
            ..sample(100.0)
        };
        // Half-speed is CI-runner noise territory: within a 0.25 floor.
        let report =
            StepThroughputReport::new(workload.clone(), mk(500.0)).with_baseline(mk(1000.0));
        assert!(report.guard_steps_per_sec(0.25).is_ok());
        // A 10x collapse is a real regression.
        let report =
            StepThroughputReport::new(workload.clone(), mk(100.0)).with_baseline(mk(1000.0));
        let err = report.guard_steps_per_sec(0.25).unwrap_err();
        assert!(err.contains("collapsed"), "message explains: {err}");
        let report = StepThroughputReport::new(workload, mk(100.0));
        assert!(
            report.guard_steps_per_sec(0.25).is_ok(),
            "no baseline passes"
        );
    }
}
