//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--episodes N] [--seed S] [--jobs N] [--wave N] [--run-log PATH|-] [--csv DIR]
//!       [--metrics-json PATH] [--metrics-prom PATH]
//!       [--trace PATH] [--trace-sample N]
//!       [--bench-json PATH] [--bench-baseline PATH] [--bench-guard PCT]
//!       [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
//!       [--scalar-reference] <target>...
//!
//! targets:
//!   table1                  HEV key parameters
//!   fig2                    fuel with vs without prediction (OSCAR, UDDS, MODEM)
//!   table2                  cumulative reward, proposed vs rule-based
//!   fig3                    MPG, proposed vs rule-based
//!   dp-bound                offline DP reference on the paper's cycles
//!   learning-curve          reduced vs full action-space convergence
//!   ablation-action-space   reduced vs full action space
//!   ablation-alpha          prediction learning-rate sweep
//!   ablation-lambda         TD(lambda) sweep
//!   ablation-weight         auxiliary weight sweep
//!   ablation-predictor      EWMA vs MA vs Markov vs MLP
//!   robustness              fault-severity degradation sweep (supervised)
//!   serve-bench             deterministic fleet-serving benchmark (hev-serve)
//!   profile                 deterministic span profile of the full stack
//!   all                     everything above except serve-bench and profile
//! ```
//!
//! `--checkpoint-dir` enables crash-tolerant training for the
//! `robustness` target: each training run checkpoints its Q-table every
//! `--checkpoint-every` episodes (default 25), and `--resume` picks up
//! from existing checkpoint files bit-identically.
//!
//! `--metrics-json` / `--trace` enable the deterministic telemetry
//! layer for the `fig2`, `table2`, and `fig3` targets: per-episode
//! metrics snapshots and sampled step traces are collected in memory
//! per run and written afterwards in task order, so the emitted files
//! are byte-identical at every `--jobs` value. `--metrics-prom` writes
//! the final registry snapshot in Prometheus text exposition format.
//! Without these flags the telemetry code paths are never entered.
//!
//! `--bench-guard PCT` (with `--bench-json` and `--bench-baseline`)
//! fails the process when the deterministic evals/step of the
//! throughput workload regresses more than PCT percent vs the baseline,
//! or when steps/s collapses below a 0.25x catastrophic floor.
//!
//! `--scalar-reference` forces the scalar reference implementation of
//! the inner optimization instead of the batched candidate kernel.
//! Output is bit-identical either way; CI diffs the two runs to prove
//! it.
//!
//! The `serve-bench` target runs the `hev-serve` fleet service over a
//! seeded synthetic fleet: `--serve-shards` picks the worker count,
//! `--chaos` injects crashes, malformed requests, and burst overload,
//! `--serve-out` writes the response stream (JSONL — byte-identical at
//! every shard count; CI `cmp`s shards 1 vs 4), and `--serve-report`
//! writes the versioned JSON report including wall-clock throughput
//! (machine-dependent, never compared). With `--csv` the per-session
//! degradation ladder lands in `serve_degradation.csv`, and
//! `--metrics-prom` exposes the serve counters in Prometheus format.
//!
//! The `profile` target runs the profiled three-phase workload
//! (training fan-out, DP reference sweep, serve fleet) under the
//! deterministic span profiler, prints the per-phase attribution table,
//! and fails when the tree's virtual-time total does not reconcile
//! exactly with the independent `hev_trace::evals` counters.
//! `--profile-json` writes the span tree (byte-identical at every
//! `--jobs` value — CI `cmp`s jobs 1 vs 4); `--profile-trace` writes a
//! Chrome `trace_event` file loadable in Perfetto. With `--trace` the
//! causal per-request serve traces land in the trace JSONL, and with
//! `--metrics-prom` the per-phase eval histograms join the exposition.
//!
//! `--wave N` steps N independent runs of each experiment-grid cell in
//! lockstep on one worker, sharing every timestep's precomputed
//! evaluation context and fusing the lanes' candidate evaluations into
//! wider batches. `--wave 1` (the default) is the per-episode reference
//! path; all output — tables, telemetry, run logs — is bit-identical at
//! every width, which CI proves by diffing `--wave 1` against
//! `--wave 8`.

use hev_bench::ablations;
use hev_bench::experiments::{self, ExperimentConfig};
use hev_bench::perf::{self, StepThroughputReport};
use hev_bench::profile;
use hev_bench::robustness::{self, CheckpointOptions};
use hev_control::harness::{runlog, RunEvent, RunLog};
use hev_control::{RunTelemetry, TelemetryConfig};
use hev_serve::{run_serve_bench, FleetConfig, ServeConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    // The CLI defaults to the machine's available parallelism; results
    // are bit-identical at every width, so only wall-clock changes.
    let mut cfg = ExperimentConfig {
        jobs: 0,
        ..Default::default()
    };
    let mut targets: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut run_log: Option<String> = None;
    let mut bench_json: Option<PathBuf> = None;
    let mut bench_baseline: Option<PathBuf> = None;
    let mut bench_guard: Option<f64> = None;
    let mut metrics_json: Option<PathBuf> = None;
    let mut metrics_prom: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut trace_sample: u64 = 1;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut checkpoint_every: usize = 25;
    let mut resume = false;
    let mut serve_chaos = false;
    let mut serve_shards: usize = 1;
    let mut serve_out: Option<PathBuf> = None;
    let mut serve_report: Option<PathBuf> = None;
    let mut profile_json: Option<PathBuf> = None;
    let mut profile_trace: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--episodes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.episodes = n,
                None => return usage("--episodes needs an integer"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => cfg.seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.jobs = n,
                None => return usage("--jobs needs an integer (0 = all cores)"),
            },
            "--wave" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cfg.wave = n,
                _ => return usage("--wave needs a positive integer (1 = per-episode path)"),
            },
            "--run-log" => match args.next() {
                Some(path) => run_log = Some(path),
                None => return usage("--run-log needs a path (or '-' for stderr)"),
            },
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => return usage("--csv needs a directory"),
            },
            "--bench-json" => match args.next() {
                Some(path) => bench_json = Some(PathBuf::from(path)),
                None => return usage("--bench-json needs a path"),
            },
            "--bench-baseline" => match args.next() {
                Some(path) => bench_baseline = Some(PathBuf::from(path)),
                None => return usage("--bench-baseline needs a path"),
            },
            "--bench-guard" => match args.next().and_then(|v| v.parse().ok()) {
                Some(pct) if pct >= 0.0 => bench_guard = Some(pct),
                _ => return usage("--bench-guard needs a non-negative percentage"),
            },
            "--metrics-json" => match args.next() {
                Some(path) => metrics_json = Some(PathBuf::from(path)),
                None => return usage("--metrics-json needs a path"),
            },
            "--metrics-prom" => match args.next() {
                Some(path) => metrics_prom = Some(PathBuf::from(path)),
                None => return usage("--metrics-prom needs a path"),
            },
            "--trace" => match args.next() {
                Some(path) => trace_path = Some(PathBuf::from(path)),
                None => return usage("--trace needs a path"),
            },
            "--trace-sample" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => trace_sample = n,
                None => return usage("--trace-sample needs an integer (0 = no step traces)"),
            },
            "--checkpoint-dir" => match args.next() {
                Some(dir) => checkpoint_dir = Some(PathBuf::from(dir)),
                None => return usage("--checkpoint-dir needs a directory"),
            },
            "--checkpoint-every" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => checkpoint_every = n,
                _ => return usage("--checkpoint-every needs a positive integer"),
            },
            "--resume" => resume = true,
            "--scalar-reference" => cfg.scalar_reference = true,
            "--chaos" => serve_chaos = true,
            "--serve-shards" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => serve_shards = n,
                _ => return usage("--serve-shards needs a positive integer"),
            },
            "--serve-out" => match args.next() {
                Some(path) => serve_out = Some(PathBuf::from(path)),
                None => return usage("--serve-out needs a path"),
            },
            "--serve-report" => match args.next() {
                Some(path) => serve_report = Some(PathBuf::from(path)),
                None => return usage("--serve-report needs a path"),
            },
            "--profile-json" => match args.next() {
                Some(path) => profile_json = Some(PathBuf::from(path)),
                None => return usage("--profile-json needs a path"),
            },
            "--profile-trace" => match args.next() {
                Some(path) => profile_trace = Some(PathBuf::from(path)),
                None => return usage("--profile-trace needs a path"),
            },
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            target => targets.push(target.to_string()),
        }
    }
    if targets.is_empty() && bench_json.is_none() {
        return usage("no target given");
    }
    if bench_guard.is_some() && (bench_json.is_none() || bench_baseline.is_none()) {
        return usage("--bench-guard needs both --bench-json and --bench-baseline");
    }
    // Telemetry stays fully disabled (and its code paths unentered)
    // unless a telemetry output was requested.
    let telemetry = TelemetryConfig {
        metrics: metrics_json.is_some() || metrics_prom.is_some(),
        trace_sample: if trace_path.is_some() {
            trace_sample
        } else {
            0
        },
        flight_capacity: if trace_path.is_some() { 64 } else { 0 },
    };
    let mut collected: Vec<RunTelemetry> = Vec::new();
    if targets.iter().any(|t| t == "all") {
        targets = [
            "table1",
            "fig2",
            "table2",
            "fig3",
            "dp-bound",
            "learning-curve",
            "ablation-action-space",
            "ablation-alpha",
            "ablation-lambda",
            "ablation-weight",
            "ablation-predictor",
            "robustness",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    for dir in [&csv_dir, &checkpoint_dir].into_iter().flatten() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let checkpoint = checkpoint_dir.map(|dir| CheckpointOptions {
        dir,
        every: checkpoint_every,
        resume,
    });
    if let Some(path) = &run_log {
        let sink = if path == "-" {
            RunLog::stderr()
        } else {
            match RunLog::create(std::path::Path::new(path)) {
                Ok(sink) => sink,
                Err(e) => {
                    eprintln!("error: cannot create run log {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        runlog::install(sink);
    }
    for t in &targets {
        let t0 = Instant::now();
        runlog::emit(&RunEvent::new("target_start", t.as_str()).jobs(cfg.harness().jobs()));
        match t.as_str() {
            "table1" => table1(),
            "fig2" => collected.extend(fig2_target(&cfg, csv_dir.as_deref(), telemetry)),
            "table2" => collected.extend(table2_target(&cfg, csv_dir.as_deref(), telemetry)),
            "fig3" => collected.extend(fig3_target(&cfg, csv_dir.as_deref(), telemetry)),
            "dp-bound" => dp_bound(&cfg),
            "learning-curve" => learning_curve(&cfg),
            "ablation-action-space" => ablation(
                "A1: reduced vs full action space",
                ablations::ablation_action_space(&cfg),
            ),
            "ablation-alpha" => ablation(
                "A2: prediction learning-rate alpha",
                ablations::ablation_alpha(&cfg),
            ),
            "ablation-lambda" => ablation(
                "A3: TD(lambda) trace decay",
                ablations::ablation_lambda(&cfg),
            ),
            "ablation-weight" => {
                ablation("A4: auxiliary weight w", ablations::ablation_weight(&cfg))
            }
            "ablation-predictor" => ablation(
                "A5: predictor comparison",
                ablations::ablation_predictor(&cfg),
            ),
            "robustness" => robustness_target(&cfg, csv_dir.as_deref(), checkpoint.as_ref()),
            "serve-bench" => {
                if let Err(code) = serve_bench_target(
                    &cfg,
                    serve_chaos,
                    serve_shards,
                    serve_out.as_deref(),
                    serve_report.as_deref(),
                    csv_dir.as_deref(),
                    &mut collected,
                ) {
                    return code;
                }
            }
            "profile" => {
                if let Err(code) = profile_target(
                    &cfg,
                    profile_json.as_deref(),
                    profile_trace.as_deref(),
                    &mut collected,
                ) {
                    return code;
                }
            }
            other => return usage(&format!("unknown target {other}")),
        }
        runlog::emit(
            &RunEvent::new("target_end", t.as_str())
                .jobs(cfg.harness().jobs())
                .elapsed(t0),
        );
    }
    if let Err(code) = write_telemetry(
        &collected,
        metrics_json.as_deref(),
        trace_path.as_deref(),
        metrics_prom.as_deref(),
    ) {
        return code;
    }
    if let Some(path) = &bench_json {
        if let Err(code) = bench_throughput(&cfg, path, bench_baseline.as_deref(), bench_guard) {
            return code;
        }
    }
    ExitCode::SUCCESS
}

/// Writes the telemetry collected across all targets, concatenated in
/// target order then task order — the same order at every `--jobs`
/// value, so these files are byte-identical across worker counts.
fn write_telemetry(
    collected: &[RunTelemetry],
    metrics_json: Option<&std::path::Path>,
    trace_path: Option<&std::path::Path>,
    metrics_prom: Option<&std::path::Path>,
) -> Result<(), ExitCode> {
    if let Some(path) = metrics_json {
        let lines: Vec<String> = collected
            .iter()
            .flat_map(|r| r.metrics_lines.iter().cloned())
            .collect();
        let report: hev_trace::sink::SinkReport = hev_trace::sink::write_jsonl(path, &lines)
            .map_err(|e| {
                eprintln!("error: cannot write {}: {e}", path.display());
                ExitCode::FAILURE
            })?;
        println!("(wrote {}: {} metrics lines)", path.display(), report.lines);
    }
    if let Some(path) = trace_path {
        let lines: Vec<String> = collected
            .iter()
            .flat_map(|r| r.trace_lines.iter().cloned())
            .collect();
        let report = hev_trace::sink::write_jsonl(path, &lines).map_err(|e| {
            eprintln!("error: cannot write {}: {e}", path.display());
            ExitCode::FAILURE
        })?;
        println!("(wrote {}: {} trace lines)", path.display(), report.lines);
    }
    if let Some(path) = metrics_prom {
        // A scrape file wants one sample per series, so expose the last
        // run's final registry snapshot (e.g. for a node_exporter
        // textfile collector); the full history is in --metrics-json.
        let text = collected
            .iter()
            .rev()
            .find(|r| !r.prometheus.is_empty())
            .map(|r| r.prometheus.as_str())
            .unwrap_or("");
        std::fs::write(path, text).map_err(|e| {
            eprintln!("error: cannot write {}: {e}", path.display());
            ExitCode::FAILURE
        })?;
        println!("(wrote {})", path.display());
    }
    Ok(())
}

/// Runs the single-threaded step-throughput workload and writes the
/// machine-readable report (see `hev_bench::perf`).
fn bench_throughput(
    cfg: &ExperimentConfig,
    path: &std::path::Path,
    baseline: Option<&std::path::Path>,
    guard_pct: Option<f64>,
) -> Result<(), ExitCode> {
    println!(
        "\n== Step throughput: staged pipeline, single-threaded ({} train episodes) ==",
        cfg.episodes
    );
    let (workload, sample) =
        perf::measure_step_throughput(cfg.episodes, cfg.seed, cfg.scalar_reference, cfg.wave);
    let mut report = StepThroughputReport::new(workload, sample);
    if let Some(base_path) = baseline {
        let text = std::fs::read_to_string(base_path).map_err(|e| {
            eprintln!("error: cannot read baseline {}: {e}", base_path.display());
            ExitCode::FAILURE
        })?;
        let base: StepThroughputReport = serde_json::from_str(&text).map_err(|e| {
            eprintln!("error: cannot parse baseline {}: {e}", base_path.display());
            ExitCode::FAILURE
        })?;
        report = report.with_baseline(base.current);
    }
    rule(72);
    println!(
        "{:>10.4} s wall   {:>10.0} steps/s   {:>8.1} evals/step   ({} steps)",
        report.current.wall_s,
        report.current.steps_per_sec,
        report.current.evals_per_step,
        report.current.steps
    );
    if let (Some(base), Some(speedup)) = (&report.baseline, report.speedup) {
        println!(
            "baseline   {:>10.4} s wall   {:>10.0} steps/s   {:>8.1} evals/step   speedup {:.2}x",
            base.wall_s, base.steps_per_sec, base.evals_per_step, speedup
        );
    }
    rule(72);
    let json = serde_json::to_string(&report).map_err(|e| {
        eprintln!("error: cannot serialize throughput report: {e}");
        ExitCode::FAILURE
    })?;
    std::fs::write(path, json + "\n").map_err(|e| {
        eprintln!("error: cannot write {}: {e}", path.display());
        ExitCode::FAILURE
    })?;
    println!("(wrote {})", path.display());
    if let Some(pct) = guard_pct {
        // Wall-clock throughput is machine-dependent, but evals/step is
        // deterministic: a growth means the hot loop does more model
        // evaluations per simulated step than the committed baseline —
        // e.g. telemetry cost leaking into the disabled path.
        report.guard_evals(pct).map_err(|msg| {
            eprintln!("error: bench guard: {msg}");
            ExitCode::FAILURE
        })?;
        // Steps/s gets only a catastrophic floor (4x collapse): noisy CI
        // runners make a tight wall-clock bound flaky, but an order-of-
        // magnitude slowdown is always a real hot-loop regression.
        report
            .guard_steps_per_sec(STEPS_GUARD_FLOOR)
            .map_err(|msg| {
                eprintln!("error: bench guard: {msg}");
                ExitCode::FAILURE
            })?;
        println!(
            "(bench guard: evals/step within {pct}% of baseline; steps/s above \
             {STEPS_GUARD_FLOOR}x floor)"
        );
    }
    Ok(())
}

/// `--bench-guard`'s wall-clock floor: fail when steps/s drops below
/// this fraction of the baseline.
const STEPS_GUARD_FLOOR: f64 = 0.25;

/// Runs the deterministic fleet-serving benchmark (`hev-serve`): a
/// seeded synthetic fleet served over `shards` workers with bounded
/// admission, eval-budget deadlines, and crash quarantine. The response
/// stream and degradation CSV are byte-identical at every shard count;
/// only the JSON report's throughput fields are machine-dependent.
fn serve_bench_target(
    cfg: &ExperimentConfig,
    chaos: bool,
    shards: usize,
    serve_out: Option<&std::path::Path>,
    serve_report: Option<&std::path::Path>,
    csv_dir: Option<&std::path::Path>,
    collected: &mut Vec<RunTelemetry>,
) -> Result<(), ExitCode> {
    let fleet = FleetConfig {
        seed: cfg.seed,
        chaos,
        ..FleetConfig::default()
    };
    println!(
        "\n== Serve bench: {} sessions, {} requests, {} shard(s){} ==",
        fleet.sessions,
        fleet.requests,
        shards,
        if chaos { ", chaos" } else { "" }
    );
    let config = ServeConfig {
        shards,
        ..ServeConfig::default()
    };
    let result = run_serve_bench(&fleet, &config).map_err(|e| {
        eprintln!("error: serve-bench: {e}");
        ExitCode::FAILURE
    })?;
    rule(72);
    println!("{}", result.report_json);
    println!("health: {}", result.health_json);
    rule(72);
    if let Some(path) = serve_out {
        std::fs::write(path, &result.response_stream).map_err(|e| {
            eprintln!("error: cannot write {}: {e}", path.display());
            ExitCode::FAILURE
        })?;
        println!(
            "(wrote {}: {} response lines)",
            path.display(),
            result.response_stream.lines().count()
        );
    }
    if let Some(path) = serve_report {
        std::fs::write(path, format!("{}\n", result.report_json)).map_err(|e| {
            eprintln!("error: cannot write {}: {e}", path.display());
            ExitCode::FAILURE
        })?;
        println!("(wrote {})", path.display());
    }
    write_csv(
        csv_dir,
        "serve_degradation",
        result.degradation_header,
        &result.degradation_rows,
    );
    // Route the health line, flight dumps, and Prometheus exposition
    // through the shared telemetry writer (--metrics-json/--trace/
    // --metrics-prom).
    collected.push(RunTelemetry {
        label: "serve-bench".to_string(),
        metrics_lines: vec![result.health_json.clone()],
        trace_lines: result.flight_dumps.clone(),
        prometheus: result.prometheus.clone(),
    });
    Ok(())
}

/// Runs the profiled three-phase workload (`hev_bench::profile`):
/// prints the per-phase attribution table, optionally writes the
/// deterministic span-tree JSON and the Chrome trace_event file, and
/// fails when the tree's virtual-time total does not reconcile exactly
/// with the independent eval counters.
fn profile_target(
    cfg: &ExperimentConfig,
    profile_json: Option<&std::path::Path>,
    profile_trace: Option<&std::path::Path>,
    collected: &mut Vec<RunTelemetry>,
) -> Result<(), ExitCode> {
    println!(
        "\n== Profile: {} training run(s) x {} episodes, DP sweep, serve fleet ==",
        cfg.runs, cfg.episodes
    );
    println!(
        "cycle: {} samples @ {} s | fleet: {} session(s), {} request(s), chaos on",
        profile::profile_cycle().len(),
        profile::profile_cycle().dt(),
        profile::PROFILE_FLEET.sessions,
        profile::PROFILE_FLEET.requests,
    );
    let result = profile::run_profile(cfg);
    rule(100);
    print!("{}", result.tree.format_attribution_table());
    rule(100);
    println!(
        "virtual total: {} evals (span tree) vs {} evals (counters) — {}",
        result.tree.total_evals(),
        result.counter_evals,
        if result.reconciles() {
            "reconciled exactly"
        } else {
            "MISMATCH"
        },
    );
    if let Some(path) = profile_json {
        std::fs::write(path, result.tree.to_json() + "\n").map_err(|e| {
            eprintln!("error: cannot write {}: {e}", path.display());
            ExitCode::FAILURE
        })?;
        println!("(wrote {})", path.display());
    }
    if let Some(path) = profile_trace {
        std::fs::write(path, result.tree.to_chrome_trace("repro profile") + "\n").map_err(|e| {
            eprintln!("error: cannot write {}: {e}", path.display());
            ExitCode::FAILURE
        })?;
        println!("(wrote {})", path.display());
    }
    // Route the causal request traces and the per-phase histograms
    // through the shared telemetry writer (--trace/--metrics-prom).
    let mut registry = hev_trace::MetricsRegistry::new();
    result.tree.populate_registry(&mut registry, "profile.");
    collected.push(RunTelemetry {
        label: "profile".to_string(),
        metrics_lines: Vec::new(),
        trace_lines: result.request_traces.clone(),
        prometheus: registry.to_prometheus("hev_"),
    });
    if !result.reconciles() {
        eprintln!(
            "error: profile: span tree total ({}) does not reconcile with the eval counters ({})",
            result.tree.total_evals(),
            result.counter_evals
        );
        return Err(ExitCode::FAILURE);
    }
    Ok(())
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [--episodes N] [--seed S] [--jobs N] [--wave N] [--run-log PATH|-] \
         [--csv DIR] \
         [--metrics-json PATH] [--metrics-prom PATH] [--trace PATH] [--trace-sample N] \
         [--bench-json PATH] [--bench-baseline PATH] [--bench-guard PCT] \
         [--checkpoint-dir DIR] [--checkpoint-every N] [--resume] \
         [--scalar-reference] \
         [--chaos] [--serve-shards N] [--serve-out PATH] [--serve-report PATH] \
         [--profile-json PATH] [--profile-trace PATH] <target>...\n\
         targets: table1 fig2 table2 fig3 dp-bound learning-curve ablation-action-space \
         ablation-alpha ablation-lambda ablation-weight ablation-predictor robustness \
         serve-bench profile all\n\
         --jobs 0 (default) uses all cores; output is bit-identical at every --jobs value.\n\
         --wave N trains N runs of a grid cell in lockstep on one worker, sharing each\n\
         timestep's precomputed context; output is bit-identical at every width.\n\
         --run-log writes JSON-lines progress/timing to PATH ('-' = stderr).\n\
         --metrics-json writes per-episode metrics JSONL for fig2/table2/fig3;\n\
         --metrics-prom writes the final snapshot in Prometheus text format;\n\
         --trace writes every --trace-sample'th step as a JSONL trace event (plus\n\
         flight-recorder dumps on degradation); files are byte-identical at every --jobs.\n\
         --bench-json runs the single-threaded step-throughput workload and writes a\n\
         machine-readable report; --bench-baseline compares against a previous report;\n\
         --bench-guard fails the run when evals/step regresses more than PCT percent\n\
         or steps/s collapses below a 0.25x floor.\n\
         --scalar-reference forces the scalar inner optimization (no batched kernel);\n\
         output is bit-identical to the default batched path.\n\
         --checkpoint-dir enables crash-tolerant training for the robustness target\n\
         (checkpoint every --checkpoint-every episodes; --resume restarts bit-identically).\n\
         serve-bench runs the hev-serve fleet service: --serve-shards picks the worker\n\
         count, --chaos injects crashes/malformed requests/burst overload, --serve-out\n\
         writes the shard-invariant response stream (JSONL), --serve-report the JSON\n\
         report with wall-clock throughput; --csv adds serve_degradation.csv.\n\
         profile runs training + DP + serve under the deterministic span profiler and\n\
         prints the per-phase attribution table; --profile-json writes the span tree\n\
         (byte-identical at every --jobs), --profile-trace a Perfetto-loadable Chrome\n\
         trace; the run fails unless the tree reconciles exactly with the eval counters."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

fn table1() {
    println!("\n== Table 1: HEV key parameters ==");
    rule(58);
    for row in experiments::table1() {
        println!("{:<34} {}", row.name, row.value);
    }
    rule(58);
}

/// Writes rows to `<dir>/<name>.csv` when a CSV directory was requested.
fn write_csv(dir: Option<&std::path::Path>, name: &str, header: &str, rows: &[String]) {
    let Some(dir) = dir else { return };
    let mut text = String::from(header);
    text.push('\n');
    for r in rows {
        text.push_str(r);
        text.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, text) {
        Ok(()) => println!("(wrote {})", path.display()),
        Err(e) => eprintln!("error: cannot write {}: {e}", path.display()),
    }
}

fn fig2_target(
    cfg: &ExperimentConfig,
    csv: Option<&std::path::Path>,
    telemetry: TelemetryConfig,
) -> Vec<RunTelemetry> {
    let (rows, runs) = experiments::fig2_with_telemetry(cfg, telemetry);
    write_csv(
        csv,
        "fig2",
        "cycle,fuel_with_g,fuel_without_g,normalized",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{}",
                    r.cycle, r.fuel_with_g, r.fuel_without_g, r.normalized
                )
            })
            .collect::<Vec<_>>(),
    );
    fig2_print(cfg, &rows);
    runs
}

fn fig2_print(cfg: &ExperimentConfig, rows: &[experiments::Fig2Row]) {
    println!(
        "\n== Figure 2: normalized fuel consumption, RL with vs without prediction \
         ({} episodes) ==",
        cfg.episodes
    );
    rule(72);
    println!(
        "{:<8} {:>14} {:>16} {:>12} {:>10}",
        "cycle", "with pred (g)", "without pred (g)", "normalized", "saving"
    );
    for r in rows {
        println!(
            "{:<8} {:>14.1} {:>16.1} {:>12.3} {:>9.1}%",
            r.cycle,
            r.fuel_with_g,
            r.fuel_without_g,
            r.normalized,
            (1.0 - r.normalized) * 100.0
        );
    }
    rule(72);
    println!("(paper: prediction-only fuel saving up to 12%)");
}

fn table2_target(
    cfg: &ExperimentConfig,
    csv: Option<&std::path::Path>,
    telemetry: TelemetryConfig,
) -> Vec<RunTelemetry> {
    let (rows, runs) = experiments::table2_with_telemetry(cfg, telemetry);
    write_csv(
        csv,
        "table2",
        "cycle,proposed,rule_based,proposed_corrected,rule_corrected,dsoc_proposed,dsoc_rule",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{},{},{}",
                    r.cycle,
                    r.proposed,
                    r.rule_based,
                    r.proposed_corrected,
                    r.rule_corrected,
                    r.proposed_delta_soc,
                    r.rule_delta_soc
                )
            })
            .collect::<Vec<_>>(),
    );
    table2_print(cfg, &rows);
    runs
}

fn table2_print(cfg: &ExperimentConfig, rows: &[experiments::Table2Row]) {
    println!(
        "\n== Table 2: cumulative reward, proposed vs rule-based ({} episodes) ==",
        cfg.episodes
    );
    rule(100);
    println!(
        "{:<8} {:>10} {:>10} {:>14} {:>14} {:>12} {:>12}",
        "cycle", "proposed", "rule", "prop (corr)", "rule (corr)", "dSoC prop", "dSoC rule"
    );
    for r in rows {
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>14.2} {:>14.2} {:>12.4} {:>12.4}",
            r.cycle,
            r.proposed,
            r.rule_based,
            r.proposed_corrected,
            r.rule_corrected,
            r.proposed_delta_soc,
            r.rule_delta_soc
        );
    }
    rule(100);
    println!("(corr = reward with the terminal SoC difference folded in as fuel-equivalent grams)");
    println!(
        "(paper: OSCAR -275.76/-337.50, UDDS -754.85/-849.25, SC03 -284.14/-319.66, \
         HWFET -741.12/-861.68)"
    );
}

fn fig3_target(
    cfg: &ExperimentConfig,
    csv: Option<&std::path::Path>,
    telemetry: TelemetryConfig,
) -> Vec<RunTelemetry> {
    let (rows, runs) = experiments::fig3_with_telemetry(cfg, telemetry);
    write_csv(
        csv,
        "fig3",
        "cycle,proposed_mpg,rule_mpg,improvement_pct",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{}",
                    r.cycle, r.proposed_mpg, r.rule_mpg, r.improvement_pct
                )
            })
            .collect::<Vec<_>>(),
    );
    fig3_print(cfg, &rows);
    runs
}

fn fig3_print(cfg: &ExperimentConfig, rows: &[experiments::Fig3Row]) {
    println!(
        "\n== Figure 3: MPG, proposed vs rule-based ({} episodes, SoC-corrected) ==",
        cfg.episodes
    );
    rule(60);
    println!(
        "{:<8} {:>12} {:>12} {:>14}",
        "cycle", "proposed", "rule-based", "improvement"
    );
    for r in rows {
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>13.1}%",
            r.cycle, r.proposed_mpg, r.rule_mpg, r.improvement_pct
        );
    }
    rule(60);
    println!("(paper: up to 29% MPG improvement)");
}

fn dp_bound(cfg: &ExperimentConfig) {
    println!("\n== Offline DP reference bound (full cycle knowledge) ==");
    rule(64);
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>14}",
        "cycle", "DP reward", "DP mpg", "ECMS mpg", "rule-based mpg"
    );
    for sc in drive_cycle::StandardCycle::paper_set() {
        let cycle = sc.cycle();
        let dp = experiments::run_dp(&cycle, cfg);
        let ecms = experiments::run_ecms(&cycle, cfg);
        let rb = experiments::run_rule_based(&cycle, cfg);
        println!(
            "{:<8} {:>12.2} {:>12.1} {:>10.1} {:>14.1}",
            sc.name(),
            dp.total_reward,
            experiments::corrected_mpg(&dp),
            experiments::corrected_mpg(&ecms),
            experiments::corrected_mpg(&rb),
        );
    }
    rule(64);
}

fn learning_curve(cfg: &ExperimentConfig) {
    println!(
        "\n== Learning curves on UDDS: reduced vs full action space ({} episodes) ==",
        cfg.episodes
    );
    rule(56);
    println!(
        "{:<10} {:>18} {:>18}",
        "episode", "reduced fuel (g)", "full fuel (g)"
    );
    let points: Vec<experiments::LearningCurvePoint> =
        experiments::learning_curve(cfg, cfg.episodes / 20);
    for p in points {
        println!(
            "{:<10} {:>18.1} {:>18.1}",
            p.episode, p.reduced_fuel_g, p.full_fuel_g
        );
    }
    rule(56);
    println!("(§4.3.2: the reduced action space should reach low fuel in fewer episodes)");
}

fn robustness_target(
    cfg: &ExperimentConfig,
    csv: Option<&std::path::Path>,
    checkpoint: Option<&CheckpointOptions>,
) {
    let rows = robustness::robustness_with(cfg, &robustness::DEFAULT_SEVERITIES, checkpoint);
    write_csv(
        csv,
        "robustness",
        "severity,proposed_fuel_g,rule_fuel_g,proposed_utility,rule_utility,\
         completed_runs,runs,decisions,rejections,myopic_rescues,rule_rescues,limp_home",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{}",
                    r.severity,
                    r.proposed_fuel_g,
                    r.rule_fuel_g,
                    r.proposed_utility,
                    r.rule_utility,
                    r.completed_runs,
                    r.runs,
                    r.degradation.decisions,
                    r.degradation.rejections(),
                    r.degradation.myopic_rescues,
                    r.degradation.rule_rescues,
                    r.degradation.limp_home
                )
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\n== Robustness: fault-severity degradation sweep on OSCAR \
         ({} episodes, supervised proposed vs rule-based) ==",
        cfg.episodes
    );
    rule(100);
    println!(
        "{:<9} {:>13} {:>13} {:>10} {:>10} {:>10} {:>11} {:>9} {:>9}",
        "severity",
        "prop fuel(g)",
        "rule fuel(g)",
        "prop util",
        "rule util",
        "completed",
        "rejections",
        "rescues",
        "limp"
    );
    for r in &rows {
        println!(
            "{:<9.2} {:>13.1} {:>13.1} {:>10.3} {:>10.3} {:>7}/{:<2} {:>11} {:>9} {:>9}",
            r.severity,
            r.proposed_fuel_g,
            r.rule_fuel_g,
            r.proposed_utility,
            r.rule_utility,
            r.completed_runs,
            r.runs,
            r.degradation.rejections(),
            r.degradation.myopic_rescues + r.degradation.rule_rescues,
            r.degradation.limp_home
        );
    }
    rule(100);
    println!(
        "(sensor + plant faults per FaultConfig::at_severity; the supervised controller must \
         complete every faulted cycle)"
    );
}

fn ablation(title: &str, rows: Vec<hev_bench::AblationRow>) {
    println!("\n== Ablation {title} ==");
    rule(64);
    println!(
        "{:<26} {:>10} {:>10} {:>13}",
        "setting", "reward", "mpg", "mean utility"
    );
    for r in rows {
        println!(
            "{:<26} {:>10.2} {:>10.1} {:>13.3}",
            r.setting, r.reward, r.mpg, r.mean_utility
        );
    }
    rule(64);
}
