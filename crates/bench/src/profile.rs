//! The `repro profile` workload: one deterministically profiled pass
//! over the full stack, with exact eval-count reconciliation.
//!
//! Three phases run under the span profiler ([`hev_trace::span`]):
//!
//! 1. **Training** — `cfg.runs` independent controller trainings fanned
//!    over the harness, each task recording its own thread-local span
//!    tree (context builds, batch fills, scored sweeps, winner replays,
//!    mask/resolve/refine/TD-update phases).
//! 2. **DP reference** — one offline dynamic-programming sweep
//!    (`dp.sweep`).
//! 3. **Serve** — a chaos-mode fleet served with
//!    [`ServeConfig::profile`] on, contributing the request-lifecycle
//!    spans (admission, ladder rungs, quarantine) plus the causal
//!    per-request trace lines.
//!
//! Every phase's tree is merged commutatively into one [`SpanTree`], so
//! the profile is bit-identical at every `--jobs` value and serve shard
//! count. Alongside the tree the caller's own [`hev_trace::evals`]
//! counters are differenced around each profiled window; the two
//! accountings must agree **exactly** ([`ProfileResult::reconciles`]) —
//! the profiler's virtual clock is the eval counter, not an estimate of
//! it.
//!
//! The wall-clock lane ([`hev_trace::wallclock`]) is installed around
//! each phase so the attribution table can show measured milliseconds;
//! wall numbers never reach the JSON or Chrome-trace artifacts, which
//! stay determinism-compared.

use crate::experiments::{self, ExperimentConfig};
use drive_cycle::DriveCycle;
use hev_control::JointControllerConfig;
use hev_serve::{run_serve_bench, FleetConfig, ServeConfig};
use hev_trace::{evals, span, wallclock, SpanTree};

/// Fleet served during the profile's serve phase (chaos on, so the
/// quarantine path shows up in the tree).
pub const PROFILE_FLEET: FleetConfig = FleetConfig {
    sessions: 4,
    requests: 48,
    seed: 0, // overwritten with `cfg.seed` at run time
    chaos: true,
};

/// Everything one profiled pass produced.
#[derive(Debug, Clone)]
pub struct ProfileResult {
    /// The merged span tree of all three phases.
    pub tree: SpanTree,
    /// Independent ground truth: the caller's own eval-counter deltas
    /// summed over the profiled windows.
    pub counter_evals: u64,
    /// Causal per-request trace lines from the serve phase (JSONL).
    pub request_traces: Vec<String>,
}

impl ProfileResult {
    /// Whether the span tree's total virtual time equals the
    /// independently measured counter delta — exactly, not
    /// approximately. `repro profile` fails the run when this is false.
    pub fn reconciles(&self) -> bool {
        self.tree.total_evals() == self.counter_evals
    }
}

/// The synthetic urban microtrip the profile runs on: three 40 s
/// trapezoids (accelerate, cruise, brake, idle) at 1 Hz. Short enough
/// that the default profile finishes in seconds, long enough that every
/// kernel phase fires.
pub fn profile_cycle() -> DriveCycle {
    let speeds: Vec<f64> = (0..120)
        .map(|t: u32| {
            let phase = t % 40;
            match phase {
                0..=9 => 1.2 * f64::from(phase),
                10..=27 => 12.0,
                28..=37 => 1.2 * f64::from(38 - phase),
                _ => 0.0,
            }
        })
        .collect();
    DriveCycle::from_speeds_mps("profile-microtrip", 1.0, speeds)
        // hevlint::allow(panic::expect, structural: the trace above is a closed-form finite non-negative sequence, checked by profile_cycle_is_well_formed)
        .expect("the synthetic profile trace is finite and non-negative")
}

/// Runs the profiled three-phase workload. `cfg` controls the training
/// fan-out (`runs`, `episodes`, `jobs`, `seed`); the cycle is always
/// [`profile_cycle`] and the serve fleet [`PROFILE_FLEET`] reseeded
/// from `cfg.seed`.
pub fn run_profile(cfg: &ExperimentConfig) -> ProfileResult {
    let cycle = profile_cycle();
    let mut tree = SpanTree::default();
    let mut counter_evals = 0u64;

    // Phase 1: training runs. Each task opens its own thread-local
    // profiling window and differences the eval counters independently;
    // trees merge commutatively in task order, so the result is
    // bit-identical at every --jobs value.
    let train_cfg = *cfg;
    let cycle_ref = &cycle;
    let trained = cfg.harness().run_seeded(
        "profile/train",
        cfg.seed,
        cfg.runs.max(1),
        move |_, seed| {
            wallclock::install();
            span::begin_task();
            let before = evals::count();
            {
                let _train = span::enter("train");
                let task_cfg = ExperimentConfig { seed, ..train_cfg };
                experiments::train_eval(JointControllerConfig::default(), cycle_ref, &task_cfg);
            }
            let spent = evals::since(before);
            let task_tree = span::take_tree();
            wallclock::uninstall();
            (task_tree, spent)
        },
    );
    for (task_tree, spent) in trained {
        tree.merge(&task_tree);
        counter_evals += spent;
    }

    // Phase 2: the offline DP bound (contains `dp.sweep`).
    wallclock::install();
    span::begin_task();
    let before = evals::count();
    {
        let _dp = span::enter("dp");
        experiments::run_dp(&cycle, cfg);
    }
    counter_evals += evals::since(before);
    tree.merge(&span::take_tree());
    wallclock::uninstall();

    // Phase 3: serve. One shard keeps every serve window on this
    // thread, so the caller-side counter delta is the exact ground
    // truth for the serve tree's total.
    let fleet = FleetConfig {
        seed: cfg.seed,
        ..PROFILE_FLEET
    };
    let serve_cfg = ServeConfig {
        shards: 1,
        profile: true,
        ..ServeConfig::default()
    };
    wallclock::install();
    let before = evals::count();
    let bench = run_serve_bench(&fleet, &serve_cfg)
        // hevlint::allow(panic::expect, structural: the fleet is built from default vehicle parameters, which are valid by construction)
        .expect("the profile fleet uses valid default vehicle parameters");
    counter_evals += evals::since(before);
    wallclock::uninstall();
    tree.merge(&bench.span_tree);

    ProfileResult {
        tree,
        counter_evals,
        request_traces: bench.request_traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExperimentConfig {
        ExperimentConfig {
            episodes: 6,
            runs: 2,
            jitter_variants: 1,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn profile_cycle_is_well_formed() {
        let c = profile_cycle();
        assert_eq!(c.len(), 120);
        assert_eq!(c.dt(), 1.0);
    }

    #[test]
    fn profile_reconciles_exactly_and_covers_every_phase() {
        let result = run_profile(&small());
        assert!(
            result.reconciles(),
            "tree {} != counters {}",
            result.tree.total_evals(),
            result.counter_evals
        );
        assert!(result.tree.total_evals() > 0);
        let top = &result.tree.root.children;
        assert!(top.contains_key("train"), "top-level spans: {top:?}");
        assert!(top.contains_key("dp"));
        assert!(
            top.keys().any(|k| k.starts_with("serve.")),
            "top-level spans: {top:?}"
        );
        assert_eq!(result.request_traces.len(), PROFILE_FLEET.requests);

        // The exported artifacts advertise the span schema the readers
        // (CI cmp, Perfetto importer) are written against.
        let json = result.tree.to_json();
        assert!(
            json.starts_with(&format!("{{\"v\":{}", span::SPAN_SCHEMA_VERSION)),
            "json header: {}",
            &json[..40.min(json.len())]
        );
        assert_eq!(
            result.tree.root.hist.len(),
            span::SPAN_EVAL_BOUNDS.len() + 1,
            "per-call histogram carries one overflow slot past the bounds"
        );

        // The attribution view walks the same tree: its top row is the
        // root, and the root's exclusive time is what no child claimed.
        let rows: Vec<span::AttributionRow> = result.tree.attribution_rows();
        assert!(rows.iter().any(|r| r.depth == 1 && r.name == "train"));
        assert!(result.tree.root.exclusive_evals() <= result.tree.total_evals());
    }

    #[test]
    fn profile_tree_is_jobs_invariant() {
        let base = small();
        let one = run_profile(&base);
        let four = run_profile(&ExperimentConfig { jobs: 4, ..base });
        assert_eq!(one.tree.to_json(), four.tree.to_json());
        assert_eq!(one.counter_evals, four.counter_evals);
        assert_eq!(one.request_traces, four.request_traces);
    }

    #[test]
    fn profiling_never_perturbs_the_result_under_observation() {
        let cfg = small();
        let cycle = profile_cycle();
        let plain = experiments::train_eval(JointControllerConfig::default(), &cycle, &cfg);
        span::begin_task();
        let observed = experiments::train_eval(JointControllerConfig::default(), &cycle, &cfg);
        let tree = span::take_tree();
        assert!(!tree.is_empty());
        assert_eq!(plain, observed);
    }
}
