//! The paper's experiments (§5), each regenerating one table or figure.
//!
//! Every function is deterministic given its configuration (seeded RNG),
//! so `repro` output is stable run-to-run.

use drive_cycle::StandardCycle;
use hev_control::{
    simulate, train_portfolio_wave, CyclePlan, DpConfig, EcmsController, EpisodeMetrics,
    EpisodeTelemetry, Harness, JointController, JointControllerConfig, RewardConfig,
    RuleBasedController, RunEvent, RunSpec, RunTelemetry, SeedSequence, TelemetryConfig,
    WaveTrainLane,
};
use hev_model::{HevParams, ParallelHev, FUEL_LHV_J_PER_G};
use serde::{Deserialize, Serialize};

/// Fuel→battery path efficiency assumed by the state-of-charge MPG
/// correction (engine ≈ 0.33 at a good operating point × electric path
/// ≈ 0.85; consistent with the reward's equivalence factor 3.6).
pub(crate) const FUEL_TO_BATTERY_EFF: f64 = 0.28;

/// Shared experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Training episodes per RL controller.
    pub episodes: usize,
    /// Initial state of charge.
    pub initial_soc: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Independent training runs (seeds `seed..seed+runs`) averaged per
    /// reported number — tabular RL on a single cycle is noisy.
    pub runs: usize,
    /// Relative speed-noise amplitude of the perturbed training replicas
    /// (drivers never reproduce a cycle exactly; the paper motivates the
    /// prediction state with exactly this non-stationarity). Evaluation
    /// always runs on the nominal cycle.
    pub train_jitter: f64,
    /// Number of perturbed replicas (plus the nominal cycle) rotated
    /// through during training.
    pub jitter_variants: usize,
    /// Worker threads for independent training runs (`repro --jobs`).
    /// Results are bit-identical at every value — each run's RNG stream
    /// is split from `seed` by task index, never by thread — so this
    /// only trades wall-clock for cores. `0` means the machine's
    /// available parallelism.
    pub jobs: usize,
    /// Forces the scalar reference implementation of the inner
    /// optimization (`repro --scalar-reference`) instead of the batched
    /// candidate kernel. Output is bit-identical either way — the flag
    /// exists so CI can prove exactly that by diffing the two runs.
    #[serde(default)]
    pub scalar_reference: bool,
    /// Lockstep wave width (`repro --wave`): how many independent runs
    /// of one experiment-grid cell step their episodes together on a
    /// worker, sharing each timestep's precomputed context and fusing
    /// their candidate evaluations into wider batches. `1` (and `0`)
    /// mean the per-episode reference path. Results — stdout tables,
    /// Q-tables, telemetry, run logs — are bit-identical at every
    /// width.
    #[serde(default)]
    pub wave: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            episodes: 800,
            initial_soc: 0.6,
            seed: 2015,
            runs: 3,
            train_jitter: 0.05,
            jitter_variants: 4,
            jobs: 1,
            scalar_reference: false,
            wave: 1,
        }
    }
}

impl ExperimentConfig {
    /// The parallel harness this configuration asks for.
    pub fn harness(&self) -> Harness {
        Harness::new(self.jobs)
    }
}

/// A fresh vehicle with the paper's (Table 1) parameters.
pub fn fresh_hev(initial_soc: f64) -> ParallelHev {
    ParallelHev::new(HevParams::default_parallel_hev(), initial_soc)
        // hevlint::allow(panic::expect, Table 1 defaults are validated by hev-model tests; a panic here means the binary itself is broken)
        .expect("default parameters are valid")
}

/// Nominal battery energy of the default pack, Wh (for MPG correction).
pub fn battery_energy_wh() -> f64 {
    hev_model::BatteryParams::default().nominal_energy_wh()
}

/// Charge-corrected MPG of an episode under the default pack.
pub fn corrected_mpg(m: &EpisodeMetrics) -> f64 {
    m.soc_corrected_mpg(battery_energy_wh(), FUEL_TO_BATTERY_EFF, FUEL_LHV_J_PER_G)
}

// ---------------------------------------------------------------------
// Table 1 — HEV key parameters
// ---------------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Parameter name.
    pub name: &'static str,
    /// Formatted value with unit.
    pub value: String,
}

/// Regenerates Table 1: the key parameters of the simulated HEV.
pub fn table1() -> Vec<Table1Row> {
    let p = HevParams::default_parallel_hev();
    let rpm = |rad: f64| rad * 30.0 / std::f64::consts::PI;
    vec![
        Table1Row {
            name: "Vehicle mass",
            value: format!("{:.0} kg", p.body.mass_kg),
        },
        Table1Row {
            name: "Air drag coefficient",
            value: format!("{:.2}", p.body.drag_coefficient),
        },
        Table1Row {
            name: "Frontal area",
            value: format!("{:.1} m^2", p.body.frontal_area_m2),
        },
        Table1Row {
            name: "Rolling friction coefficient",
            value: format!("{:.3}", p.body.rolling_coefficient),
        },
        Table1Row {
            name: "Wheel radius",
            value: format!("{:.3} m", p.body.wheel_radius_m),
        },
        Table1Row {
            name: "ICE rated power",
            value: format!("{:.0} kW", p.ice.rated_power_w() / 1_000.0),
        },
        Table1Row {
            name: "ICE speed range",
            value: format!(
                "{:.0}-{:.0} rpm",
                rpm(p.ice.idle_speed_rad_s),
                rpm(p.ice.max_speed_rad_s)
            ),
        },
        Table1Row {
            name: "ICE peak efficiency",
            value: format!("{:.0} %", p.ice.peak_efficiency * 100.0),
        },
        Table1Row {
            name: "EM rated power",
            value: format!("{:.0} kW", p.motor.rated_power_w / 1_000.0),
        },
        Table1Row {
            name: "EM max torque",
            value: format!("{:.0} N*m", p.motor.max_torque_nm),
        },
        Table1Row {
            name: "Battery capacity",
            value: format!("{:.0} Ah", p.battery.capacity_ah),
        },
        Table1Row {
            name: "Battery nominal energy",
            value: format!("{:.1} kWh", p.battery.nominal_energy_wh() / 1_000.0),
        },
        Table1Row {
            name: "SoC window",
            value: format!(
                "{:.0}-{:.0} %",
                p.battery.soc_min * 100.0,
                p.battery.soc_max * 100.0
            ),
        },
        Table1Row {
            name: "Gear ratios (overall)",
            value: format!("{:?}", p.drivetrain.gear_ratios),
        },
        Table1Row {
            name: "Preferred auxiliary power",
            value: format!("{:.0} W", p.aux.preferred_power_w),
        },
        Table1Row {
            name: "Auxiliary power range",
            value: format!("{:.0}-{:.0} W", p.aux.min_power_w, p.aux.max_power_w),
        },
    ]
}

// ---------------------------------------------------------------------
// Figure 2 — fuel consumption with vs without prediction
// ---------------------------------------------------------------------

/// One bar pair of Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Cycle name.
    pub cycle: String,
    /// Fuel with prediction, g.
    pub fuel_with_g: f64,
    /// Fuel without prediction, g.
    pub fuel_without_g: f64,
    /// Fuel with prediction, normalized to the without-prediction run.
    pub normalized: f64,
}

/// Figure 2: normalized fuel consumption of the RL framework with and
/// without driving-profile prediction on OSCAR, UDDS, MODEM.
pub fn fig2(cfg: &ExperimentConfig) -> Vec<Fig2Row> {
    fig2_with_telemetry(cfg, TelemetryConfig::disabled()).0
}

/// [`fig2`] plus per-run telemetry (see [`train_eval_grid_telemetry`]
/// for the ordering contract). With a disabled config this takes the
/// exact untelemetered code path and returns no telemetry.
pub fn fig2_with_telemetry(
    cfg: &ExperimentConfig,
    telemetry: TelemetryConfig,
) -> (Vec<Fig2Row>, Vec<RunTelemetry>) {
    let set = [
        StandardCycle::Oscar,
        StandardCycle::Udds,
        StandardCycle::ModemUrban,
    ];
    let cycles: Vec<_> = set.iter().map(|sc| sc.cycle()).collect();
    let variants = [
        ("with", JointControllerConfig::proposed()),
        ("without", JointControllerConfig::without_prediction()),
    ];
    let (grid, runs) = train_eval_grid_telemetry("fig2", &cycles, &variants, cfg, telemetry);
    let rows = set
        .iter()
        .zip(&grid)
        .map(|(sc, per_variant)| {
            // Compare charge-corrected fuel so a deeper battery draw does
            // not masquerade as a fuel saving; average across runs.
            let fw = mean_of(&per_variant[0], corrected_fuel_g);
            let fo = mean_of(&per_variant[1], corrected_fuel_g);
            Fig2Row {
                cycle: sc.name().to_string(),
                fuel_with_g: fw,
                fuel_without_g: fo,
                normalized: fw / fo,
            }
        })
        .collect();
    (rows, runs)
}

/// Fuel plus the fuel-equivalent of any net battery depletion, g.
pub fn corrected_fuel_g(m: &EpisodeMetrics) -> f64 {
    let delta_j = (m.soc_final - m.soc_initial) * battery_energy_wh() * 3600.0;
    m.fuel_g - delta_j / (FUEL_TO_BATTERY_EFF * FUEL_LHV_J_PER_G)
}

// ---------------------------------------------------------------------
// Table 2 — cumulative reward, proposed vs rule-based
// ---------------------------------------------------------------------

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Cycle name.
    pub cycle: String,
    /// Cumulative reward of the proposed joint controller.
    pub proposed: f64,
    /// Cumulative reward of the rule-based policy.
    pub rule_based: f64,
    /// Proposed reward with the net state-of-charge change converted to
    /// fuel-equivalent grams (fair comparison across different terminal
    /// charge levels).
    pub proposed_corrected: f64,
    /// Rule-based reward with the same correction.
    pub rule_corrected: f64,
    /// Net state-of-charge change of the proposed run (for context).
    pub proposed_delta_soc: f64,
    /// Net state-of-charge change of the rule-based run.
    pub rule_delta_soc: f64,
}

/// Cumulative reward with the terminal state-of-charge difference folded
/// in as fuel-equivalent grams.
pub fn corrected_reward(m: &EpisodeMetrics) -> f64 {
    let delta_j = (m.soc_final - m.soc_initial) * battery_energy_wh() * 3600.0;
    m.total_reward + delta_j / (FUEL_TO_BATTERY_EFF * FUEL_LHV_J_PER_G)
}

/// Table 2: cumulative reward `Σ(−ṁ_f + w·f_aux)·ΔT` of the proposed
/// joint controller vs the rule-based policy on OSCAR, UDDS, SC03, HWFET.
pub fn table2(cfg: &ExperimentConfig) -> Vec<Table2Row> {
    table2_with_telemetry(cfg, TelemetryConfig::disabled()).0
}

/// [`table2`] plus per-run telemetry (see [`train_eval_grid_telemetry`]
/// for the ordering contract). With a disabled config this takes the
/// exact untelemetered code path and returns no telemetry.
pub fn table2_with_telemetry(
    cfg: &ExperimentConfig,
    telemetry: TelemetryConfig,
) -> (Vec<Table2Row>, Vec<RunTelemetry>) {
    let set = StandardCycle::paper_set();
    let cycles: Vec<_> = set.iter().map(|sc| sc.cycle()).collect();
    let variants = [("proposed", JointControllerConfig::proposed())];
    let (grid, runs) = train_eval_grid_telemetry("table2", &cycles, &variants, cfg, telemetry);
    let rows = set
        .iter()
        .zip(cycles.iter().zip(&grid))
        .map(|(sc, (cycle, per_variant))| {
            let proposed = &per_variant[0];
            let rule = run_rule_based(cycle, cfg);
            Table2Row {
                cycle: sc.name().to_string(),
                proposed: mean_of(proposed, |m| m.total_reward),
                rule_based: rule.total_reward,
                proposed_corrected: mean_of(proposed, corrected_reward),
                rule_corrected: corrected_reward(&rule),
                proposed_delta_soc: mean_of(proposed, |m| m.soc_final - m.soc_initial),
                rule_delta_soc: rule.soc_final - rule.soc_initial,
            }
        })
        .collect();
    (rows, runs)
}

// ---------------------------------------------------------------------
// Figure 3 — MPG, proposed vs rule-based
// ---------------------------------------------------------------------

/// One bar pair of Figure 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Cycle name.
    pub cycle: String,
    /// Charge-corrected MPG of the proposed controller.
    pub proposed_mpg: f64,
    /// Charge-corrected MPG of the rule-based policy.
    pub rule_mpg: f64,
    /// Relative improvement, percent.
    pub improvement_pct: f64,
}

/// Figure 3: MPG achieved by the proposed joint controller vs the
/// rule-based policy on the paper's four cycles.
pub fn fig3(cfg: &ExperimentConfig) -> Vec<Fig3Row> {
    fig3_with_telemetry(cfg, TelemetryConfig::disabled()).0
}

/// [`fig3`] plus per-run telemetry (see [`train_eval_grid_telemetry`]
/// for the ordering contract). With a disabled config this takes the
/// exact untelemetered code path and returns no telemetry.
pub fn fig3_with_telemetry(
    cfg: &ExperimentConfig,
    telemetry: TelemetryConfig,
) -> (Vec<Fig3Row>, Vec<RunTelemetry>) {
    let set = StandardCycle::paper_set();
    let cycles: Vec<_> = set.iter().map(|sc| sc.cycle()).collect();
    let variants = [("proposed", JointControllerConfig::proposed())];
    let (grid, runs) = train_eval_grid_telemetry("fig3", &cycles, &variants, cfg, telemetry);
    let rows = set
        .iter()
        .zip(cycles.iter().zip(&grid))
        .map(|(sc, (cycle, per_variant))| {
            let rule = run_rule_based(cycle, cfg);
            let p = mean_of(&per_variant[0], corrected_mpg);
            let r = corrected_mpg(&rule);
            Fig3Row {
                cycle: sc.name().to_string(),
                proposed_mpg: p,
                rule_mpg: r,
                improvement_pct: (p / r - 1.0) * 100.0,
            }
        })
        .collect();
    (rows, runs)
}

// ---------------------------------------------------------------------
// Learning curves — the §4.3.2 convergence-speed claim
// ---------------------------------------------------------------------

/// One sampled point of a learning curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearningCurvePoint {
    /// Training episode index.
    pub episode: usize,
    /// Charge-corrected fuel of that training episode under the reduced
    /// action space, g.
    pub reduced_fuel_g: f64,
    /// The same for the full action space.
    pub full_fuel_g: f64,
}

/// Training curves of the reduced vs full action space on UDDS — the
/// paper argues the reduced space converges faster (§4.3.2). Points are
/// sampled every `stride` episodes.
pub fn learning_curve(cfg: &ExperimentConfig, stride: usize) -> Vec<LearningCurvePoint> {
    let cycle = StandardCycle::Udds.cycle();
    let seed = SeedSequence::new(cfg.seed).child(0);
    let tasks = vec![
        RunSpec {
            label: "learning-curve/reduced".to_string(),
            seed,
            payload: JointControllerConfig::proposed(),
        },
        RunSpec {
            label: "learning-curve/full".to_string(),
            seed,
            payload: JointControllerConfig::full_action_space(5, vec![100.0, 600.0, 1_100.0]),
        },
    ];
    let mut arms = cfg
        .harness()
        .run(
            "learning-curve",
            tasks,
            |_, seed, mut c: JointControllerConfig| {
                c.initial_soc = cfg.initial_soc;
                c.seed = seed;
                let mut hev = fresh_hev(cfg.initial_soc);
                let mut agent = JointController::new(c);
                agent.train(&mut hev, &cycle, cfg.episodes)
            },
        )
        .into_iter();
    let (reduced, full) = (
        arms.next().expect("reduced arm"), // hevlint::allow(panic::expect, structural: the harness returns exactly the two submitted arms)
        arms.next().expect("full arm"), // hevlint::allow(panic::expect, structural: the harness returns exactly the two submitted arms)
    );
    reduced
        .iter()
        .zip(&full)
        .enumerate()
        .filter(|(k, _)| k % stride.max(1) == 0)
        .map(|(k, (r, f))| LearningCurvePoint {
            episode: k,
            reduced_fuel_g: corrected_fuel_g(r),
            full_fuel_g: corrected_fuel_g(f),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Shared runners
// ---------------------------------------------------------------------

/// Trains a joint controller on a cycle and returns the greedy
/// evaluation of a single run — run 0 of the master seed's family, so
/// it matches `train_eval_runs(..)[0]` exactly.
pub fn train_eval(
    controller_cfg: JointControllerConfig,
    cycle: &drive_cycle::DriveCycle,
    cfg: &ExperimentConfig,
) -> EpisodeMetrics {
    train_eval_seeded(
        controller_cfg,
        cycle,
        cfg,
        SeedSequence::new(cfg.seed).child(0),
    )
}

/// The standard training set: the nominal cycle plus perturbed replicas
/// (drivers never reproduce a trace exactly). Evaluation always uses the
/// nominal cycle.
pub fn jitter_portfolio(
    cycle: &drive_cycle::DriveCycle,
    seed: u64,
    cfg: &ExperimentConfig,
) -> Vec<drive_cycle::DriveCycle> {
    let mut portfolio = vec![cycle.clone()];
    for k in 0..cfg.jitter_variants {
        portfolio.push(cycle.perturbed(seed.wrapping_add(100 + k as u64), cfg.train_jitter));
    }
    portfolio
}

/// [`jitter_portfolio`] compiled to [`CyclePlan`]s: every timestep's
/// evaluation context tabulated once per cycle (`plans[0]` is the
/// nominal cycle). The plans depend only on the vehicle's static
/// parameters, never on its battery state, so one set serves a whole
/// training run — and, cloned, every lane of a wave.
pub(crate) fn plan_portfolio(
    hev: &ParallelHev,
    cycle: &drive_cycle::DriveCycle,
    seed: u64,
    cfg: &ExperimentConfig,
) -> Vec<CyclePlan> {
    jitter_portfolio(cycle, seed, cfg)
        .iter()
        .map(|c| CyclePlan::new(hev, c))
        .collect()
}

fn train_eval_seeded(
    mut controller_cfg: JointControllerConfig,
    cycle: &drive_cycle::DriveCycle,
    cfg: &ExperimentConfig,
    seed: u64,
) -> EpisodeMetrics {
    controller_cfg.initial_soc = cfg.initial_soc;
    controller_cfg.seed = seed;
    controller_cfg.inner.scalar_reference |= cfg.scalar_reference;
    let mut hev = fresh_hev(cfg.initial_soc);
    let mut agent = JointController::new(controller_cfg);
    let plans = plan_portfolio(&hev, cycle, seed, cfg);
    let rounds = (cfg.episodes / plans.len()).max(1);
    agent.train_portfolio_planned(&mut hev, &plans, rounds);
    agent.evaluate_planned(&mut hev, &plans[0])
}

/// [`train_eval_seeded`] with a telemetry collector threaded through
/// every training episode and the final greedy evaluation. All recorded
/// lines stay in memory inside the returned [`RunTelemetry`]; the caller
/// writes them in task order, which keeps files byte-identical at every
/// worker count.
fn train_eval_seeded_telemetry(
    mut controller_cfg: JointControllerConfig,
    cycle: &drive_cycle::DriveCycle,
    cfg: &ExperimentConfig,
    seed: u64,
    label: &str,
    telemetry: TelemetryConfig,
) -> (EpisodeMetrics, RunTelemetry) {
    controller_cfg.initial_soc = cfg.initial_soc;
    controller_cfg.seed = seed;
    controller_cfg.inner.scalar_reference |= cfg.scalar_reference;
    let mut hev = fresh_hev(cfg.initial_soc);
    let mut agent = JointController::new(controller_cfg);
    let plans = plan_portfolio(&hev, cycle, seed, cfg);
    let rounds = (cfg.episodes / plans.len()).max(1);
    let mut collector = EpisodeTelemetry::new(label, telemetry);
    agent.train_portfolio_planned_instrumented(&mut hev, &plans, rounds, Some(&mut collector));
    let metrics = agent.evaluate_planned_instrumented(&mut hev, &plans[0], Some(&mut collector));
    (metrics, collector.into_run())
}

/// Trains `cfg.runs` independent controllers (seed-split from
/// `cfg.seed`) and returns every greedy evaluation, fanned across
/// `cfg.jobs` workers. Bit-identical at every worker count.
pub fn train_eval_runs(
    controller_cfg: &JointControllerConfig,
    cycle: &drive_cycle::DriveCycle,
    cfg: &ExperimentConfig,
) -> Vec<EpisodeMetrics> {
    let group = format!("train/{}", cycle.name());
    cfg.harness()
        .run_seeded(&group, cfg.seed, cfg.runs.max(1), |_, seed| {
            train_eval_seeded(controller_cfg.clone(), cycle, cfg, seed)
        })
}

/// Trains every `(cycle × controller variant × run)` combination as one
/// flat parallel batch and returns metrics indexed
/// `[cycle][variant][run]`.
///
/// Flattening matters for wall-clock: `fig2` has 3 cycles × 2 variants
/// × `runs` runs, and a per-call fan-out would cap the useful worker
/// count at `runs`. Task order (and therefore output) is independent of
/// scheduling; every task's seed depends only on its run index, exactly
/// as in the serial path.
pub fn train_eval_grid(
    group: &str,
    cycles: &[drive_cycle::DriveCycle],
    variants: &[(&str, JointControllerConfig)],
    cfg: &ExperimentConfig,
) -> Vec<Vec<Vec<EpisodeMetrics>>> {
    let runs = cfg.runs.max(1);
    let tasks = grid_tasks(group, cycles, variants, cfg);
    let flat = if cfg.wave <= 1 {
        cfg.harness().run(group, tasks, |_, seed, (ci, vi)| {
            train_eval_seeded(variants[vi].1.clone(), &cycles[ci], cfg, seed)
        })
    } else {
        let chunks = chunk_grid_tasks(tasks, runs, cfg.wave);
        cfg.harness().run_chunked(group, chunks, |_, chunk| {
            train_eval_chunk(chunk, cycles, variants, cfg, None)
                .into_iter()
                .map(|(m, _, events)| (m, events))
                .collect()
        })
    };
    nest_grid(flat, cycles.len(), variants.len(), runs)
}

/// [`train_eval_grid`] that additionally collects per-run telemetry.
///
/// The second element holds one [`RunTelemetry`] per grid task in task
/// order (cycle-major, then variant, then run index) — the same order
/// at every `--jobs` value, so concatenating the runs' lines yields
/// byte-identical files regardless of worker count. A disabled
/// `telemetry` config short-circuits to the exact [`train_eval_grid`]
/// code path and returns no telemetry.
pub(crate) fn train_eval_grid_telemetry(
    group: &str,
    cycles: &[drive_cycle::DriveCycle],
    variants: &[(&str, JointControllerConfig)],
    cfg: &ExperimentConfig,
    telemetry: TelemetryConfig,
) -> (Vec<Vec<Vec<EpisodeMetrics>>>, Vec<RunTelemetry>) {
    if !telemetry.is_enabled() {
        return (train_eval_grid(group, cycles, variants, cfg), Vec::new());
    }
    let runs = cfg.runs.max(1);
    let tasks = grid_tasks(group, cycles, variants, cfg);
    let (metrics, collected): (Vec<_>, Vec<_>) = if cfg.wave <= 1 {
        let labels: Vec<String> = tasks.iter().map(|t| t.label.clone()).collect();
        cfg.harness()
            .run(group, tasks, |i, seed, (ci, vi)| {
                train_eval_seeded_telemetry(
                    variants[vi].1.clone(),
                    &cycles[ci],
                    cfg,
                    seed,
                    &labels[i],
                    telemetry,
                )
            })
            .into_iter()
            .unzip()
    } else {
        let chunks = chunk_grid_tasks(tasks, runs, cfg.wave);
        cfg.harness()
            .run_chunked(group, chunks, |_, chunk| {
                train_eval_chunk(chunk, cycles, variants, cfg, Some(telemetry))
                    .into_iter()
                    .map(|(m, telem, events)| ((m, telem), events))
                    .collect()
            })
            .into_iter()
            .map(|(m, telem)| {
                // hevlint::allow(panic::expect, structural: the chunk runner attaches a collector to every lane when telemetry is enabled)
                (m, telem.expect("telemetry collector"))
            })
            .unzip()
    };
    (
        nest_grid(metrics, cycles.len(), variants.len(), runs),
        collected,
    )
}

/// Splits a grid task list into lockstep chunks of at most `wave`
/// tasks, never crossing a grid-cell boundary ([`grid_tasks`] emits the
/// `runs` tasks of a cell consecutively, and a chunk must share one
/// cycle to train in lockstep).
fn chunk_grid_tasks<T>(tasks: Vec<RunSpec<T>>, runs: usize, wave: usize) -> Vec<Vec<RunSpec<T>>> {
    let mut chunks = Vec::new();
    let mut iter = tasks.into_iter();
    loop {
        let cell: Vec<RunSpec<T>> = iter.by_ref().take(runs).collect();
        if cell.is_empty() {
            break;
        }
        let mut cell = cell.into_iter().peekable();
        while cell.peek().is_some() {
            chunks.push(cell.by_ref().take(wave.max(1)).collect());
        }
    }
    chunks
}

/// Trains one lockstep chunk: every task is a run of the same grid cell
/// (same cycle, same controller variant, its own seed), stepped as one
/// wave sharing the nominal cycle's plan. Returns, per task in chunk
/// order, the greedy evaluation, the collected telemetry (when
/// enabled), and the buffered run-log events for post-hoc emission.
fn train_eval_chunk(
    chunk: Vec<RunSpec<(usize, usize)>>,
    cycles: &[drive_cycle::DriveCycle],
    variants: &[(&str, JointControllerConfig)],
    cfg: &ExperimentConfig,
    telemetry: Option<TelemetryConfig>,
) -> Vec<(EpisodeMetrics, Option<RunTelemetry>, Vec<RunEvent>)> {
    let Some(first) = chunk.first() else {
        return Vec::new();
    };
    let (ci, vi) = first.payload;
    let cycle = &cycles[ci];
    // The plans depend only on the static vehicle parameters, so one
    // reference vehicle builds them for every lane; the nominal plan is
    // built once and its table shared across the whole chunk.
    let reference_hev = fresh_hev(cfg.initial_soc);
    let nominal = CyclePlan::new(&reference_hev, cycle);
    let mut agents = Vec::with_capacity(chunk.len());
    let mut hevs = Vec::with_capacity(chunk.len());
    let mut plans_per: Vec<Vec<CyclePlan>> = Vec::with_capacity(chunk.len());
    let mut collectors: Vec<Option<EpisodeTelemetry>> = Vec::with_capacity(chunk.len());
    for spec in &chunk {
        let mut c = variants[vi].1.clone();
        c.initial_soc = cfg.initial_soc;
        c.seed = spec.seed;
        c.inner.scalar_reference |= cfg.scalar_reference;
        agents.push(JointController::new(c));
        hevs.push(fresh_hev(cfg.initial_soc));
        let mut plans = vec![nominal.clone()];
        for k in 0..cfg.jitter_variants {
            plans.push(CyclePlan::new(
                &reference_hev,
                &cycle.perturbed(spec.seed.wrapping_add(100 + k as u64), cfg.train_jitter),
            ));
        }
        plans_per.push(plans);
        collectors.push(telemetry.map(|t| {
            let mut col = EpisodeTelemetry::new(&spec.label, t);
            col.buffer_runlog();
            col
        }));
    }
    let rounds = (cfg.episodes / plans_per[0].len()).max(1);
    let mut lanes: Vec<WaveTrainLane<'_>> = agents
        .iter_mut()
        .zip(hevs.iter_mut())
        .zip(plans_per.iter().zip(collectors.iter_mut()))
        .map(|((agent, hev), (plans, col))| WaveTrainLane {
            agent,
            hev,
            plans,
            telemetry: col.as_mut(),
        })
        .collect();
    train_portfolio_wave(&mut lanes, rounds);
    drop(lanes);
    // Greedy evaluation is one episode per lane — run it sequentially,
    // exactly as the per-run path does after its own training.
    let mut out = Vec::with_capacity(chunk.len());
    for j in 0..chunk.len() {
        let metrics = match collectors[j].as_mut() {
            Some(col) => {
                agents[j].evaluate_planned_instrumented(&mut hevs[j], &plans_per[j][0], Some(col))
            }
            None => agents[j].evaluate_planned(&mut hevs[j], &plans_per[j][0]),
        };
        let (telem, events) = match collectors[j].take() {
            Some(mut col) => {
                let events = col.take_runlog_events();
                (Some(col.into_run()), events)
            }
            None => (None, Vec::new()),
        };
        out.push((metrics, telem, events));
    }
    out
}

/// The flat task list of a `(cycle × variant × run)` grid, in the fixed
/// cycle-major order every grid consumer relies on.
fn grid_tasks(
    group: &str,
    cycles: &[drive_cycle::DriveCycle],
    variants: &[(&str, JointControllerConfig)],
    cfg: &ExperimentConfig,
) -> Vec<RunSpec<(usize, usize)>> {
    let runs = cfg.runs.max(1);
    let seq = SeedSequence::new(cfg.seed);
    let mut tasks = Vec::with_capacity(cycles.len() * variants.len() * runs);
    for (ci, cycle) in cycles.iter().enumerate() {
        for (vi, (vname, _)) in variants.iter().enumerate() {
            for k in 0..runs {
                tasks.push(RunSpec {
                    label: format!("{group}/{}/{vname}/run{k}", cycle.name()),
                    seed: seq.child(k as u64),
                    payload: (ci, vi),
                });
            }
        }
    }
    tasks
}

/// Reshapes a flat grid result back to `[cycle][variant][run]`.
fn nest_grid<T>(flat: Vec<T>, n_cycles: usize, n_variants: usize, runs: usize) -> Vec<Vec<Vec<T>>> {
    let mut iter = flat.into_iter();
    (0..n_cycles)
        .map(|_| {
            (0..n_variants)
                .map(|_| {
                    (0..runs)
                        // hevlint::allow(panic::expect, structural: the harness returns one result per submitted grid cell)
                        .map(|_| iter.next().expect("grid result"))
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Mean of a per-episode scalar across runs.
pub(crate) fn mean_of<F: Fn(&EpisodeMetrics) -> f64>(runs: &[EpisodeMetrics], f: F) -> f64 {
    runs.iter().map(f).sum::<f64>() / runs.len() as f64
}

/// Runs the rule-based baseline on a cycle.
pub fn run_rule_based(cycle: &drive_cycle::DriveCycle, cfg: &ExperimentConfig) -> EpisodeMetrics {
    let mut hev = fresh_hev(cfg.initial_soc);
    let mut rule = RuleBasedController::default();
    simulate(&mut hev, cycle, &mut rule, &RewardConfig::default())
}

/// Runs the ECMS reference on a cycle.
pub fn run_ecms(cycle: &drive_cycle::DriveCycle, cfg: &ExperimentConfig) -> EpisodeMetrics {
    let mut hev = fresh_hev(cfg.initial_soc);
    let mut ecms = EcmsController::default();
    simulate(&mut hev, cycle, &mut ecms, &RewardConfig::default())
}

/// Runs the offline DP bound on a cycle.
pub fn run_dp(cycle: &drive_cycle::DriveCycle, cfg: &ExperimentConfig) -> EpisodeMetrics {
    let mut hev = fresh_hev(cfg.initial_soc);
    hev_control::solve_dp(&mut hev, cycle, cfg.initial_soc, &DpConfig::default()).metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_all_subsystems() {
        let rows = table1();
        assert!(rows.len() >= 12);
        let names: Vec<_> = rows.iter().map(|r| r.name).collect();
        for needle in [
            "Vehicle mass",
            "ICE rated power",
            "EM rated power",
            "Battery capacity",
        ] {
            assert!(names.contains(&needle), "missing {needle}");
        }
        assert!(rows.iter().all(|r| !r.value.is_empty()));
    }

    #[test]
    fn corrected_fuel_penalizes_depletion() {
        let mut m = EpisodeMetrics::new(0.7);
        m.fuel_g = 100.0;
        m.soc_final = 0.5;
        assert!(corrected_fuel_g(&m) > 100.0);
    }

    fn tiny_cycle() -> drive_cycle::DriveCycle {
        drive_cycle::ProfileBuilder::new("wave-tiny")
            .idle(2.0)
            .trip(30.0, 8.0, 15.0, 6.0, 3.0)
            .trip(20.0, 6.0, 8.0, 5.0, 3.0)
            .build()
            .expect("valid test cycle")
    }

    fn grid_metrics(cfg: &ExperimentConfig) -> Vec<Vec<Vec<EpisodeMetrics>>> {
        let cycles = [tiny_cycle()];
        let variants = [("p", JointControllerConfig::proposed())];
        train_eval_grid("wave-test", &cycles, &variants, cfg)
    }

    #[test]
    fn wave_grid_is_bit_identical_to_sequential_grid() {
        let base = ExperimentConfig {
            episodes: 6,
            runs: 3,
            jitter_variants: 1,
            ..ExperimentConfig::default()
        };
        let reference = grid_metrics(&base);
        for wave in [2, 3, 8] {
            let waved = grid_metrics(&ExperimentConfig { wave, ..base });
            for (cell_a, cell_b) in reference[0][0].iter().zip(&waved[0][0]) {
                assert_eq!(
                    cell_a.fuel_g.to_bits(),
                    cell_b.fuel_g.to_bits(),
                    "wave={wave}"
                );
                assert_eq!(
                    cell_a.total_reward.to_bits(),
                    cell_b.total_reward.to_bits(),
                    "wave={wave}"
                );
                assert_eq!(
                    cell_a.soc_final.to_bits(),
                    cell_b.soc_final.to_bits(),
                    "wave={wave}"
                );
            }
        }
    }

    #[test]
    fn multi_run_summary_aggregates_every_training_run() {
        let cfg = ExperimentConfig {
            episodes: 4,
            runs: 3,
            jitter_variants: 1,
            ..ExperimentConfig::default()
        };
        let cycle = tiny_cycle();
        let runs = train_eval_runs(&JointControllerConfig::proposed(), &cycle, &cfg);
        let summary = hev_control::MetricsSummary::from_runs(&runs);
        assert_eq!(summary.runs, runs.len());
        assert!(summary.fuel_g.mean.is_finite());
    }

    #[test]
    fn rule_based_runner_is_deterministic() {
        let cfg = ExperimentConfig::default();
        let cycle = StandardCycle::Oscar.cycle();
        let a = run_rule_based(&cycle, &cfg);
        let b = run_rule_based(&cycle, &cfg);
        assert_eq!(a.fuel_g, b.fuel_g);
    }
}
