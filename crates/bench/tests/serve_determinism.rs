//! Serving determinism and chaos suites (the ISSUE-8 acceptance
//! criteria): same seed + same request order ⇒ byte-identical response
//! stream, degradation report, and shed log at shard counts {1, 2, 4};
//! and under chaos mode the service never panics the process, never
//! emits an infeasible or non-finite control, and answers every request
//! exactly once.

use hev_serve::{run_serve_bench, serve, FleetConfig, ServeConfig, Verdict};

fn fleet(chaos: bool) -> FleetConfig {
    FleetConfig {
        sessions: 6,
        requests: 220,
        seed: 42,
        chaos,
    }
}

fn at_shards(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        ..ServeConfig::default()
    }
}

#[test]
fn response_stream_is_byte_identical_at_shard_counts_1_2_4() {
    for chaos in [false, true] {
        let runs: Vec<_> = [1, 2, 4]
            .into_iter()
            .map(|s| run_serve_bench(&fleet(chaos), &at_shards(s)).unwrap())
            .collect();
        for other in &runs[1..] {
            assert_eq!(
                runs[0].response_stream, other.response_stream,
                "response stream diverged across shard counts (chaos {chaos})"
            );
            assert_eq!(
                runs[0].degradation_rows, other.degradation_rows,
                "degradation report diverged across shard counts (chaos {chaos})"
            );
            assert_eq!(
                runs[0].prometheus, other.prometheus,
                "shed/serve counters diverged across shard counts (chaos {chaos})"
            );
            assert_eq!(runs[0].report, other.report);
        }
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    let a = run_serve_bench(&fleet(true), &at_shards(2)).unwrap();
    let b = run_serve_bench(&fleet(true), &at_shards(2)).unwrap();
    assert_eq!(a.response_stream, b.response_stream);
    assert_eq!(a.degradation_rows, b.degradation_rows);
    assert_eq!(a.health_json, b.health_json);
}

#[test]
fn chaos_never_panics_and_answers_every_request_exactly_once() {
    let config = fleet(true);
    let sessions = hev_serve::fleet::build_sessions(&config);
    let requests = hev_serve::fleet::build_requests(&config, sessions.len() as u64);
    let output = serve(&at_shards(3), &sessions, &requests).unwrap();

    // Exactly one response per request, in stream order.
    assert_eq!(output.responses.len(), requests.len());
    for (req, resp) in requests.iter().zip(&output.responses) {
        assert_eq!(resp.index, req.index);
        assert_eq!(resp.session, req.session);
    }

    // Served controls are finite and the dispositions reconcile.
    let mut served = 0u64;
    for resp in &output.responses {
        if let Verdict::Served {
            control, soc_after, ..
        } = &resp.verdict
        {
            assert!(control.is_finite(), "non-finite control served");
            assert!(soc_after.is_finite());
            served += 1;
        }
    }
    let stats_served: u64 = output.stats.values().map(|s| s.served).sum();
    assert_eq!(served, stats_served);

    // The chaos stream's attack shapes all left traces: quarantines from
    // crash flags, shedding from bursts, typed errors from malformed
    // requests.
    assert!(output.quarantines > 0, "crash flags must quarantine");
    let shed: u64 = output.stats.values().map(|s| s.shed).sum();
    assert!(shed > 0, "bursts must shed");
    let errors: u64 = output.stats.values().map(|s| s.errors).sum();
    assert!(
        errors + output.unknown_session > 0,
        "malformed requests must yield typed errors"
    );
}

#[test]
fn report_json_is_versioned_and_deterministic() {
    let a = run_serve_bench(&fleet(true), &at_shards(1)).unwrap();
    // The throughput-free report encoding is byte-stable; wall-clock
    // fields live only in `report_json`/`to_json_with_throughput`.
    let b = run_serve_bench(&fleet(true), &at_shards(4)).unwrap();
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert!(a.report.to_json().starts_with("{\"version\":2,"));
}
