//! Determinism and observer-effect tests for the telemetry layer.
//!
//! The telemetry contract has three legs:
//!
//! 1. **byte-identity across workers** — the JSONL lines a telemetry-
//!    enabled grid emits are byte-identical at every `--jobs` value,
//!    because lines are collected per task and concatenated in task
//!    order;
//! 2. **no observer effect** — enabling telemetry changes *nothing*
//!    about the physics or learning: metrics rows and trained Q-tables
//!    are bit-identical with and without collection;
//! 3. **flight recorder** — forced degradation dumps the ring, and the
//!    dump carries the offending step's state, action, and reward
//!    terms.

use drive_cycle::StandardCycle;
use hev_bench::experiments::{self, ExperimentConfig};
use hev_control::{
    simulate_instrumented, ControlError, DecisionInfo, EpisodeTelemetry, HevPolicy,
    JointController, JointControllerConfig, Observation, PolicyTelemetry, RewardConfig,
    SupervisedPolicy, TelemetryConfig,
};
use hev_model::{ControlInput, ParallelHev, StepOutcome};

fn tiny(jobs: usize) -> ExperimentConfig {
    ExperimentConfig {
        episodes: 6,
        runs: 2,
        jobs,
        ..Default::default()
    }
}

fn sampled() -> TelemetryConfig {
    TelemetryConfig {
        metrics: true,
        trace_sample: 25,
        flight_capacity: 16,
    }
}

/// Leg 1: the concatenated metrics/trace line streams of a telemetry-
/// enabled fig2 are byte-identical at every worker count.
#[test]
fn telemetry_lines_identical_across_worker_counts() {
    let (rows1, runs1) = experiments::fig2_with_telemetry(&tiny(1), sampled());
    let flatten = |runs: &[hev_control::RunTelemetry]| {
        let metrics: Vec<String> = runs
            .iter()
            .flat_map(|r| r.metrics_lines.iter().cloned())
            .collect();
        let trace: Vec<String> = runs
            .iter()
            .flat_map(|r| r.trace_lines.iter().cloned())
            .collect();
        (metrics, trace)
    };
    let serial = flatten(&runs1);
    assert!(!serial.0.is_empty(), "metrics lines were collected");
    assert!(!serial.1.is_empty(), "trace lines were collected");
    for jobs in [2, 4] {
        let (rows_n, runs_n) = experiments::fig2_with_telemetry(&tiny(jobs), sampled());
        assert_eq!(rows1, rows_n, "rows diverged at {jobs} workers");
        assert_eq!(
            serial,
            flatten(&runs_n),
            "telemetry lines diverged at {jobs} workers"
        );
    }
    // Labels arrive in the fixed cycle-major task order.
    assert_eq!(runs1[0].label, "fig2/OSCAR/with/run0");
    assert_eq!(runs1[1].label, "fig2/OSCAR/with/run1");
}

/// Leg 2a: a telemetry-enabled grid reports the same metrics as the
/// plain grid — observation must not perturb physics or learning.
#[test]
fn enabled_telemetry_has_no_observer_effect_on_metrics() {
    let cfg = tiny(2);
    let plain = experiments::fig2(&cfg);
    let (observed, runs) = experiments::fig2_with_telemetry(&cfg, sampled());
    assert_eq!(plain, observed);
    assert!(!runs.is_empty());
}

/// Leg 2b: training through the instrumented path with a zero-sample,
/// metrics-off collector yields a bit-identical trained controller to
/// the plain untelemetered path (the `--trace-sample 0` acceptance).
#[test]
fn disabled_collector_yields_bit_identical_q_tables() {
    let cycle = StandardCycle::Oscar.cycle();
    let train = |telemetry: Option<TelemetryConfig>| {
        let mut cfg = JointControllerConfig::proposed();
        cfg.seed = 42;
        let mut hev = experiments::fresh_hev(cfg.initial_soc);
        let mut agent = JointController::new(cfg);
        let portfolio = vec![cycle.clone()];
        match telemetry {
            None => {
                agent.train_portfolio(&mut hev, &portfolio, 4);
                (agent.snapshot(), agent.evaluate(&mut hev, &cycle))
            }
            Some(t) => {
                let mut collector = EpisodeTelemetry::new("t", t);
                agent.train_portfolio_instrumented(&mut hev, &portfolio, 4, Some(&mut collector));
                let m = agent.evaluate_instrumented(&mut hev, &cycle, Some(&mut collector));
                let run = collector.into_run();
                assert!(run.metrics_lines.is_empty() && run.trace_lines.is_empty());
                (agent.snapshot(), m)
            }
        }
    };
    let (plain_snapshot, plain_eval) = train(None);
    let (traced_snapshot, traced_eval) = train(Some(TelemetryConfig::disabled()));
    assert_eq!(plain_snapshot, traced_snapshot, "trained state diverged");
    assert_eq!(plain_eval, traced_eval, "evaluation diverged");
}

/// A policy that asks its inner joint controller for a decision, then
/// corrupts the current to NaN — the supervisor must reject every step.
struct Corrupt {
    inner: JointController,
}

impl HevPolicy for Corrupt {
    fn begin_episode(&mut self) {
        self.inner.begin_episode();
    }

    fn decide(&mut self, hev: &ParallelHev, obs: &Observation<'_>) -> ControlInput {
        let mut control = self.inner.decide(hev, obs);
        control.battery_current_a = f64::NAN;
        control
    }

    fn feedback(
        &mut self,
        hev: &ParallelHev,
        obs: &Observation<'_>,
        outcome: &StepOutcome,
        reward: f64,
    ) {
        self.inner.feedback(hev, obs, outcome, reward);
    }

    fn end_episode(&mut self) {
        self.inner.end_episode();
    }

    fn take_control_error(&mut self) -> Option<ControlError> {
        self.inner.take_control_error()
    }

    fn set_record_decisions(&mut self, on: bool) {
        self.inner.set_record_decisions(on);
    }

    fn last_decision(&self) -> Option<DecisionInfo> {
        self.inner.last_decision()
    }

    fn telemetry_snapshot(&self) -> Option<PolicyTelemetry> {
        self.inner.telemetry_snapshot()
    }
}

/// Leg 3: forced supervisor degradation dumps the flight ring, and the
/// dump's events carry the offending step's state, action, and reward
/// terms.
#[test]
fn forced_degradation_dumps_flight_recorder_with_decision_context() {
    let cycle = StandardCycle::Oscar.cycle();
    let mut cfg = JointControllerConfig::proposed();
    cfg.seed = 42;
    let mut agent = JointController::new(cfg);
    agent.set_training(false);
    let mut supervised = SupervisedPolicy::new(Corrupt { inner: agent });
    let mut hev = experiments::fresh_hev(0.6);
    let telemetry = TelemetryConfig {
        metrics: false,
        trace_sample: 0,
        flight_capacity: 16,
    };
    let mut collector = EpisodeTelemetry::new("forced", telemetry);
    simulate_instrumented(
        &mut hev,
        &cycle,
        &mut supervised,
        &RewardConfig::default(),
        None,
        Some(&mut collector),
    );
    let run = collector.into_run();
    let dump = run
        .trace_lines
        .iter()
        .find(|l| l.contains("\"event\":\"flight_dump\""))
        .expect("degradation produced a flight dump");
    assert!(dump.contains("\"trigger\":\"supervisor_degradation\""));
    // Step 0 is the first rejection, so the ring holds exactly that
    // step's event, with the decision context and reward decomposition.
    assert!(dump.contains("\"step\":0"));
    assert!(dump.contains("\"state\":"), "dump carries the state index");
    assert!(!dump.contains("\"state\":null"), "state index is concrete");
    assert!(dump.contains("\"action\":"), "dump carries the action");
    assert!(dump.contains("\"reward\":"), "dump carries the reward");
    assert!(dump.contains("\"fuel_g\":"), "dump carries the fuel term");
    assert!(dump.contains("\"aux_term\":"), "dump carries the aux term");
    // Profiling is off, so the dump stays byte-compatible with the
    // pre-profiler artifact: no span_path field.
    assert!(!dump.contains("span_path"));
    // Exactly one dump per episode even though every step degraded.
    let dumps = run
        .trace_lines
        .iter()
        .filter(|l| l.contains("\"event\":\"flight_dump\""))
        .count();
    assert_eq!(dumps, 1);
}

/// Leg 3b: the same forced degradation under the span profiler — the
/// flight dump carries the phase that was active when the degradation
/// was noted (`control.step`: health is checked while the step span is
/// still open, after the supervisor span closed).
#[test]
fn forced_degradation_dump_carries_the_active_span_path_while_profiling() {
    let cycle = StandardCycle::Oscar.cycle();
    let mut cfg = JointControllerConfig::proposed();
    cfg.seed = 42;
    let mut agent = JointController::new(cfg);
    agent.set_training(false);
    let mut supervised = SupervisedPolicy::new(Corrupt { inner: agent });
    let mut hev = experiments::fresh_hev(0.6);
    let telemetry = TelemetryConfig {
        metrics: false,
        trace_sample: 0,
        flight_capacity: 16,
    };
    let mut collector = EpisodeTelemetry::new("forced", telemetry);
    hev_trace::span::begin_task();
    simulate_instrumented(
        &mut hev,
        &cycle,
        &mut supervised,
        &RewardConfig::default(),
        None,
        Some(&mut collector),
    );
    let tree = hev_trace::span::take_tree();
    assert!(tree.root.children.contains_key("control.step"));
    let run = collector.into_run();
    let dump = run
        .trace_lines
        .iter()
        .find(|l| l.contains("\"event\":\"flight_dump\""))
        .expect("degradation produced a flight dump");
    assert!(
        dump.contains("\"span_path\":\"control.step\""),
        "dump {dump}"
    );
}
