//! Smoke tests of the experiment harness at tiny budgets: every target
//! must run end to end and produce structurally sane rows. (Statistical
//! claims are checked by the full `repro` run, not here.)

use hev_bench::experiments::{
    self, corrected_fuel_g, corrected_mpg, corrected_reward, ExperimentConfig,
};

fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        episodes: 3,
        runs: 1,
        jitter_variants: 1,
        ..Default::default()
    }
}

#[test]
fn table1_is_complete() {
    let rows = experiments::table1();
    assert!(rows.len() >= 14);
    assert!(rows.iter().all(|r| !r.value.trim().is_empty()));
}

#[test]
fn fig2_produces_three_positive_rows() {
    let rows = experiments::fig2(&tiny());
    assert_eq!(rows.len(), 3);
    for r in &rows {
        assert!(r.fuel_with_g > 0.0, "{}", r.cycle);
        assert!(r.fuel_without_g > 0.0, "{}", r.cycle);
        assert!(r.normalized > 0.0 && r.normalized.is_finite());
    }
    let names: Vec<_> = rows.iter().map(|r| r.cycle.as_str()).collect();
    assert_eq!(names, ["OSCAR", "UDDS", "MODEM"]);
}

#[test]
fn table2_rows_have_negative_rewards() {
    let rows = experiments::table2(&tiny());
    assert_eq!(rows.len(), 4);
    for r in &rows {
        // Rewards are negative by construction (utility peaks at 0).
        assert!(r.proposed < 0.0, "{}", r.cycle);
        assert!(r.rule_based < 0.0, "{}", r.cycle);
        assert!(r.proposed_corrected.is_finite());
    }
}

#[test]
fn fig3_mpg_rows_are_physical() {
    let rows = experiments::fig3(&tiny());
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert!(
            (10.0..200.0).contains(&r.proposed_mpg),
            "{}: {}",
            r.cycle,
            r.proposed_mpg
        );
        assert!(
            (10.0..200.0).contains(&r.rule_mpg),
            "{}: {}",
            r.cycle,
            r.rule_mpg
        );
    }
}

#[test]
fn learning_curve_is_sampled() {
    let points = experiments::learning_curve(&tiny(), 1);
    assert_eq!(points.len(), 3);
    assert!(points
        .iter()
        .all(|p| p.reduced_fuel_g > 0.0 && p.full_fuel_g > 0.0));
}

#[test]
fn corrections_are_consistent() {
    // Corrected reward and corrected fuel move oppositely for the same
    // ΔSoC perturbation.
    let mut m = hev_control::EpisodeMetrics::new(0.6);
    m.fuel_g = 100.0;
    m.distance_m = 10_000.0;
    m.total_reward = -100.0;
    let base_fuel = corrected_fuel_g(&m);
    let base_reward = corrected_reward(&m);
    let base_mpg = corrected_mpg(&m);
    m.soc_final = 0.65; // banked charge
    assert!(corrected_fuel_g(&m) < base_fuel);
    assert!(corrected_reward(&m) > base_reward);
    assert!(corrected_mpg(&m) > base_mpg);
}

#[test]
fn jitter_portfolio_contains_nominal_plus_variants() {
    let cfg = ExperimentConfig {
        jitter_variants: 3,
        ..Default::default()
    };
    let cycle = drive_cycle::StandardCycle::Oscar.cycle();
    let portfolio = experiments::jitter_portfolio(&cycle, 1, &cfg);
    assert_eq!(portfolio.len(), 4);
    assert_eq!(portfolio[0], cycle);
    for v in &portfolio[1..] {
        assert_eq!(v.len(), cycle.len());
        assert_ne!(v.speeds_mps(), cycle.speeds_mps());
    }
}
