//! Parallel-determinism regression tests and golden shape tests.
//!
//! The harness's contract is that `--jobs N` only trades wall-clock for
//! cores: every result is **bit-identical** at every worker count,
//! because each run's RNG stream is split from the master seed by task
//! index, never by thread. These tests pin that contract (serial vs
//! 1/2/8 workers, down to the trained Q-tables) and the qualitative
//! shape of the headline experiment at a small, fixed budget.

use drive_cycle::StandardCycle;
use hev_bench::experiments::{self, corrected_fuel_g, ExperimentConfig};
use hev_control::{
    simulate_with_faults, ControllerSnapshot, EpisodeMetrics, FaultConfig, FaultPlan, Harness,
    JointController, JointControllerConfig, RewardConfig, SeedSequence, SupervisedPolicy,
};

/// A budget small enough for CI but large enough that training leaves
/// the all-zeros Q-table far behind.
fn tiny(jobs: usize) -> ExperimentConfig {
    ExperimentConfig {
        episodes: 6,
        runs: 3,
        jobs,
        ..Default::default()
    }
}

/// Trains one controller per split seed and returns the full trained
/// state, fanned across `jobs` workers.
fn train_snapshots(jobs: usize) -> Vec<(ControllerSnapshot, f64)> {
    let cycle = StandardCycle::Oscar.cycle();
    Harness::new(jobs).run_seeded("determinism", 2015, 3, |_, seed| {
        let mut cfg = JointControllerConfig::proposed();
        cfg.seed = seed;
        let mut hev = experiments::fresh_hev(cfg.initial_soc);
        let mut agent = JointController::new(cfg);
        agent.train(&mut hev, &cycle, 4);
        let fuel = agent.evaluate(&mut hev, &cycle).fuel_g;
        (agent.snapshot(), fuel)
    })
}

#[test]
fn q_tables_and_fuel_identical_across_worker_counts() {
    let serial = train_snapshots(1);
    for jobs in [2, 8] {
        let parallel = train_snapshots(jobs);
        assert_eq!(
            serial, parallel,
            "trained state diverged between 1 and {jobs} workers"
        );
    }
    // Distinct split seeds really trained distinct controllers.
    assert_ne!(serial[0].0.learner, serial[1].0.learner);
}

#[test]
fn train_eval_runs_identical_across_worker_counts() {
    let cycle = StandardCycle::Oscar.cycle();
    let controller = JointControllerConfig::proposed();
    let serial = experiments::train_eval_runs(&controller, &cycle, &tiny(1));
    for jobs in [2, 8] {
        let parallel = experiments::train_eval_runs(&controller, &cycle, &tiny(jobs));
        assert_eq!(
            serial, parallel,
            "metrics diverged between 1 and {jobs} workers"
        );
    }
    assert_eq!(serial.len(), 3);
}

/// Trains tiny controllers and evaluates them supervised under seeded
/// fault plans, fanned across `jobs` workers.
fn faulted_evaluations(jobs: usize) -> Vec<EpisodeMetrics> {
    let cycle = StandardCycle::Oscar.cycle();
    Harness::new(jobs).run_seeded("fault-determinism", 2015, 4, |k, seed| {
        let mut cfg = JointControllerConfig::proposed();
        cfg.seed = seed;
        let mut hev = experiments::fresh_hev(cfg.initial_soc);
        let mut agent = JointController::new(cfg);
        agent.train(&mut hev, &cycle, 2);
        agent.set_training(false);
        let mut supervised = SupervisedPolicy::new(agent);
        let mut plan = FaultPlan::from_sequence(
            FaultConfig::at_severity(1.0),
            &SeedSequence::new(7),
            k as u64,
        );
        let mut faulted_hev = experiments::fresh_hev(0.6);
        plan.degrade_plant(&mut faulted_hev);
        simulate_with_faults(
            &mut faulted_hev,
            &cycle,
            &mut supervised,
            &RewardConfig::default(),
            Some(&mut plan),
        )
    })
}

/// The fault path inherits the harness's any-worker-count determinism:
/// a seeded `FaultPlan` yields bit-identical faulted metrics (and
/// degradation reports) at every `--jobs` value.
#[test]
fn faulted_evaluations_identical_across_worker_counts() {
    let serial = faulted_evaluations(1);
    for jobs in [2, 8] {
        assert_eq!(
            serial,
            faulted_evaluations(jobs),
            "faulted metrics diverged between 1 and {jobs} workers"
        );
    }
    // The faults actually bit: every run carries a degradation report
    // over the full cycle.
    let cycle_len = StandardCycle::Oscar.cycle().len();
    for m in &serial {
        assert_eq!(m.steps, cycle_len);
        assert_eq!(
            m.degradation.expect("supervised report").decisions,
            cycle_len
        );
    }
}

/// Trains one controller per split seed on the given evaluation path
/// (batched by default, or the scalar reference implementation when
/// `scalar_reference` is set) and returns the full trained state.
fn train_snapshots_on_path(jobs: usize, scalar_reference: bool) -> Vec<(ControllerSnapshot, f64)> {
    let cycle = StandardCycle::Oscar.cycle();
    Harness::new(jobs).run_seeded("determinism", 2015, 3, |_, seed| {
        let mut cfg = JointControllerConfig::proposed();
        cfg.seed = seed;
        cfg.inner.scalar_reference = scalar_reference;
        let mut hev = experiments::fresh_hev(cfg.initial_soc);
        let mut agent = JointController::new(cfg);
        agent.train(&mut hev, &cycle, 4);
        let fuel = agent.evaluate(&mut hev, &cycle).fuel_g;
        (agent.snapshot(), fuel)
    })
}

/// The batched candidate-evaluation path is a pure performance
/// refactor: against the scalar reference implementation (the pre-batch
/// golden, reachable via `InnerOptimizer::scalar_reference`), training
/// yields bit-identical Q-tables, exploration state, fuel, and
/// serialized run output at every worker count. The embedded config is
/// excluded from the comparison — it necessarily differs by the
/// `scalar_reference` flag itself.
#[test]
fn batched_path_matches_scalar_reference_goldens() {
    fn trained_state(
        snapshots: Vec<(ControllerSnapshot, f64)>,
    ) -> Vec<(hev_rl::TdLambda, f64, [u64; 4], f64)> {
        snapshots
            .into_iter()
            .map(|(s, fuel)| (s.learner, s.epsilon, s.rng_state, fuel))
            .collect()
    }
    let golden = trained_state(train_snapshots_on_path(1, true));
    let golden_bytes = serde_json::to_string(&golden).expect("snapshots serialize");
    for jobs in [1, 2, 4] {
        let batched = trained_state(train_snapshots_on_path(jobs, false));
        assert_eq!(
            golden, batched,
            "batched trained state diverged from the scalar reference at {jobs} workers"
        );
        let batched_bytes = serde_json::to_string(&batched).expect("snapshots serialize");
        assert_eq!(
            golden_bytes, batched_bytes,
            "batched run output bytes diverged from the scalar reference at {jobs} workers"
        );
    }
}

/// The supervised fault path, which resolves through the batched inner
/// optimization, matches the scalar reference bit for bit — faulted
/// metrics and degradation reports included.
#[test]
fn batched_supervised_fault_path_matches_scalar_reference() {
    // `faulted_evaluations` runs the default (batched) configuration;
    // replay it with the scalar reference forced through the supervisor.
    let batched = faulted_evaluations(1);
    let cycle = StandardCycle::Oscar.cycle();
    let scalar: Vec<EpisodeMetrics> =
        Harness::new(1).run_seeded("fault-determinism", 2015, 4, |k, seed| {
            let mut cfg = JointControllerConfig::proposed();
            cfg.seed = seed;
            cfg.inner.scalar_reference = true;
            let mut hev = experiments::fresh_hev(cfg.initial_soc);
            let mut agent = JointController::new(cfg);
            agent.train(&mut hev, &cycle, 2);
            agent.set_training(false);
            let mut supervisor_cfg = hev_control::supervisor::SupervisorConfig::default();
            supervisor_cfg.inner.scalar_reference = true;
            let mut supervised = SupervisedPolicy::with_config(agent, supervisor_cfg);
            let mut plan = FaultPlan::from_sequence(
                FaultConfig::at_severity(1.0),
                &SeedSequence::new(7),
                k as u64,
            );
            let mut faulted_hev = experiments::fresh_hev(0.6);
            plan.degrade_plant(&mut faulted_hev);
            simulate_with_faults(
                &mut faulted_hev,
                &cycle,
                &mut supervised,
                &RewardConfig::default(),
                Some(&mut plan),
            )
        });
    assert_eq!(
        scalar, batched,
        "supervised fault path diverged between scalar reference and batched resolve"
    );
}

#[test]
fn seed_splitting_matches_serial_reference() {
    // The harness must seed run k with split_seed(master, k) — the same
    // family a plain serial loop over SeedSequence children would use.
    let seq = SeedSequence::new(2015);
    let seeds = Harness::new(4).run_seeded("seeds", 2015, 4, |_, seed| seed);
    let expected: Vec<u64> = (0..4).map(|k| seq.child(k)).collect();
    assert_eq!(seeds, expected);
}

/// Golden shape of Figure 2 at a fixed tiny budget. Training is
/// deterministic given (seed, episodes), so these are stable regression
/// anchors, not statistical claims: at this budget the predicted-demand
/// state already pays off on the urban cycles (UDDS, MODEM), mirroring
/// the paper's headline direction.
#[test]
fn fig2_golden_shape_small_budget() {
    let cfg = ExperimentConfig {
        episodes: 12,
        jobs: 0,
        ..Default::default()
    };
    let rows = experiments::fig2(&cfg);
    assert_eq!(rows.len(), 3);
    assert_eq!(
        rows.iter().map(|r| r.cycle.as_str()).collect::<Vec<_>>(),
        ["OSCAR", "UDDS", "MODEM"]
    );
    for r in &rows {
        assert!(
            r.fuel_with_g.is_finite() && r.fuel_with_g > 0.0,
            "{}: corrected fuel (with) = {}",
            r.cycle,
            r.fuel_with_g
        );
        assert!(
            r.fuel_without_g.is_finite() && r.fuel_without_g > 0.0,
            "{}: corrected fuel (without) = {}",
            r.cycle,
            r.fuel_without_g
        );
        assert!(
            (0.5..2.0).contains(&r.normalized),
            "{}: normalized fuel {} outside sanity band",
            r.cycle,
            r.normalized
        );
    }
    for urban in [&rows[1], &rows[2]] {
        assert!(
            urban.normalized < 1.0,
            "{}: prediction should beat no-prediction at this budget \
             (normalized = {:.3})",
            urban.cycle,
            urban.normalized
        );
    }
}

/// The corrected-fuel metric itself must stay finite and positive for
/// every run of the small-budget grid (a NaN here would silently poison
/// every averaged table).
#[test]
fn corrected_fuel_finite_positive_across_grid() {
    let cfg = tiny(0);
    let cycles = [StandardCycle::Oscar.cycle(), StandardCycle::Udds.cycle()];
    let variants = [
        ("with", JointControllerConfig::proposed()),
        ("without", JointControllerConfig::without_prediction()),
    ];
    let grid = experiments::train_eval_grid("shape", &cycles, &variants, &cfg);
    for per_cycle in &grid {
        for per_variant in per_cycle {
            assert_eq!(per_variant.len(), cfg.runs);
            for m in per_variant {
                let f = corrected_fuel_g(m);
                assert!(f.is_finite() && f > 0.0, "corrected fuel = {f}");
            }
        }
    }
}

/// The sparse Q-table's snapshot/serialization path must not depend on
/// write order: after the `BTreeMap` migration, iteration and the
/// serde tree both walk entries in `(state, action)` key order, so two
/// tables holding the same values — written in opposite orders, as
/// different worker interleavings would — serialize byte-identically
/// and survive a round-trip bit-exactly.
#[test]
fn sparse_table_serialization_independent_of_write_order() {
    use hev_rl::SparseQTable;

    let writes: Vec<(usize, usize, f64)> = (0..64)
        .map(|k| ((k * 37) % 19, k % 5, (k as f64) * 0.125 - 3.0))
        .collect();
    let mut fwd = SparseQTable::new(5, -1.0);
    let mut rev = SparseQTable::new(5, -1.0);
    for &(s, a, v) in &writes {
        fwd.set(s, a, v);
        fwd.visit(s, a);
    }
    for &(s, a, v) in writes.iter().rev() {
        rev.set(s, a, v);
        rev.visit(s, a);
    }

    let fwd_json = serde_json::to_string(&fwd).expect("sparse table serializes");
    let rev_json = serde_json::to_string(&rev).expect("sparse table serializes");
    assert_eq!(fwd_json, rev_json, "serialization depends on write order");

    // Iteration (the snapshot/export walk) is sorted and identical.
    let fwd_entries: Vec<_> = fwd.iter_entries().collect();
    assert!(
        fwd_entries.windows(2).all(|w| w[0].0 < w[1].0),
        "iter_entries must ascend by (state, action)"
    );
    assert_eq!(fwd_entries, rev.iter_entries().collect::<Vec<_>>());
    assert_eq!(
        fwd.iter_visits().collect::<Vec<_>>(),
        rev.iter_visits().collect::<Vec<_>>()
    );

    // Round-trip is bit-exact, including f64 payloads.
    let back: SparseQTable = serde_json::from_str(&fwd_json).expect("round-trip");
    assert_eq!(back, fwd);
    assert_eq!(
        serde_json::to_string(&back).expect("re-serialize"),
        fwd_json
    );
}
