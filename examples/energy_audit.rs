//! Energy audit: record a full trace of the rule-based and RL controllers
//! on UDDS and break down where the energy went — engine, electric drive,
//! regeneration, friction, auxiliaries.
//!
//! Run with: `cargo run --release --example energy_audit`

use hev_joint_control::control::analysis::{EnergyAudit, Recorder};
use hev_joint_control::control::{
    mode_index, simulate, JointController, JointControllerConfig, RewardConfig, RuleBasedController,
};
use hev_joint_control::cycle::StandardCycle;
use hev_joint_control::model::{HevParams, OperatingMode, ParallelHev};

fn print_audit(label: &str, audit: &EnergyAudit) {
    println!("\n--- {label} ---");
    println!(
        "{:<28} {:>10.1} Wh",
        "engine mechanical output", audit.engine_wh
    );
    println!(
        "{:<28} {:>10.1} Wh",
        "electric drive output", audit.electric_drive_wh
    );
    println!("{:<28} {:>10.1} Wh", "energy regenerated", audit.regen_wh);
    println!(
        "{:<28} {:>10.1} Wh",
        "friction brake losses", audit.friction_wh
    );
    println!("{:<28} {:>10.1} Wh", "auxiliary consumption", audit.aux_wh);
    println!(
        "{:<28} {:>10.1} Wh",
        "net battery draw", audit.battery_net_wh
    );
    println!(
        "{:<28} {:>10.1} %",
        "regen capture fraction",
        audit.regen_fraction() * 100.0
    );
    println!("{:<28} {:>10}", "engine starts", audit.engine_starts);
    for (mode, name) in [
        (OperatingMode::Stopped, "stopped"),
        (OperatingMode::IceOnly, "ice-only"),
        (OperatingMode::EvOnly, "ev-only"),
        (OperatingMode::HybridAssist, "hybrid assist"),
        (OperatingMode::RechargeDrive, "recharge drive"),
        (OperatingMode::RegenBraking, "regen braking"),
        (OperatingMode::FrictionBraking, "friction braking"),
    ] {
        println!(
            "  {:<24} {:>8.0} s",
            name,
            audit.mode_seconds[mode_index(mode)]
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cycle = StandardCycle::Udds.cycle();
    let reward = RewardConfig::default();

    // Rule-based, recorded.
    let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
    let mut recorded_rule = Recorder::new(RuleBasedController::default());
    simulate(&mut hev, &cycle, &mut recorded_rule, &reward);
    print_audit(
        "rule-based on UDDS",
        &EnergyAudit::of(recorded_rule.trace()),
    );

    // Proposed joint RL: train, freeze, replay greedily through the
    // recorder.
    let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
    let mut agent = JointController::new(JointControllerConfig::proposed());
    agent.train(&mut hev, &cycle, 200);
    agent.set_training(false);
    let mut recorded_rl = Recorder::new(agent);
    hev.reset_soc(0.6);
    simulate(&mut hev, &cycle, &mut recorded_rl, &reward);
    print_audit(
        "joint RL on UDDS (greedy)",
        &EnergyAudit::of(recorded_rl.trace()),
    );
    Ok(())
}
