//! Quickstart: train the joint RL controller on a short urban cycle and
//! compare it against the rule-based baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use hev_joint_control::control::{
    simulate, JointController, JointControllerConfig, RewardConfig, RuleBasedController,
};
use hev_joint_control::cycle::StandardCycle;
use hev_joint_control::model::{HevParams, ParallelHev};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Assemble the vehicle (ADVISOR-class parallel HEV, 60 % SoC).
    let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;

    // 2. Pick a driving cycle. OSCAR is the shortest of the paper's set.
    let cycle = StandardCycle::Oscar.cycle();
    println!(
        "cycle {}: {:.0} s, {:.1} km",
        cycle.name(),
        cycle.duration_s(),
        cycle.distance_m() / 1_000.0
    );

    // 3. Train the proposed joint controller (TD(λ) + demand prediction,
    //    reduced action space).
    let mut agent = JointController::new(JointControllerConfig::proposed());
    let episodes = 400;
    let learning = agent.train(&mut hev, &cycle, episodes);
    println!(
        "trained {episodes} episodes; first-episode reward {:.1}, last {:.1}",
        learning.first().map(|m| m.total_reward).unwrap_or(0.0),
        learning.last().map(|m| m.total_reward).unwrap_or(0.0),
    );

    // 4. Greedy evaluation.
    let proposed = agent.evaluate(&mut hev, &cycle);

    // 5. Rule-based baseline on a fresh vehicle.
    hev.reset_soc(0.6);
    let mut rule = RuleBasedController::default();
    let baseline = simulate(&mut hev, &cycle, &mut rule, &RewardConfig::default());

    println!("\n{:<22} {:>12} {:>12}", "", "proposed", "rule-based");
    println!(
        "{:<22} {:>12.1} {:>12.1}",
        "fuel (g)", proposed.fuel_g, baseline.fuel_g
    );
    println!(
        "{:<22} {:>12.2} {:>12.2}",
        "cumulative reward", proposed.total_reward, baseline.total_reward
    );
    println!(
        "{:<22} {:>12.1} {:>12.1}",
        "raw mpg",
        proposed.mpg(),
        baseline.mpg()
    );
    let corrected = |m: &hev_joint_control::control::EpisodeMetrics| {
        m.soc_corrected_mpg(7_800.0, 0.28, 42_600.0)
    };
    println!(
        "{:<22} {:>12.1} {:>12.1}",
        "SoC-corrected mpg",
        corrected(&proposed),
        corrected(&baseline)
    );
    println!(
        "{:<22} {:>12.4} {:>12.4}",
        "ΔSoC",
        proposed.soc_final - proposed.soc_initial,
        baseline.soc_final - baseline.soc_initial
    );
    println!(
        "{:<22} {:>12.3} {:>12.3}",
        "mean aux utility",
        proposed.mean_utility(),
        baseline.mean_utility()
    );
    Ok(())
}
