//! Predictor playground: compare the one-step prediction error of every
//! driving-profile predictor on the standard cycles' power-demand-like
//! signals — the trade-off §4.2 of the paper discusses.
//!
//! Run with: `cargo run --release --example predictor_playground`

use hev_joint_control::cycle::StandardCycle;
use hev_joint_control::model::{HevParams, VehicleBody};
use hev_joint_control::predict::{
    mean_squared_error, Ewma, MarkovChain, MlpPredictor, MovingAverage, Predictor,
};

/// The propulsion power demand trace of a cycle, W.
fn demand_signal(cycle: &hev_joint_control::cycle::DriveCycle) -> Vec<f64> {
    let body = VehicleBody::new(HevParams::default_parallel_hev().body)
        .expect("default parameters are valid");
    cycle
        .points()
        .map(|p| {
            body.demand(p.speed_mps, p.accel_mps2, p.grade)
                .power_demand_w
        })
        .collect()
}

fn main() {
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "cycle", "persist", "ewma .3", "mavg 10", "markov", "mlp"
    );
    for sc in StandardCycle::all() {
        let signal = demand_signal(&sc.cycle());
        let rms = |mse: f64| mse.sqrt() / 1_000.0; // kW

        // Persistence reference: predict the next value as the last one.
        let mut persistence = Ewma::new(1.0);
        let p0 = rms(mean_squared_error(&mut persistence, &signal));

        let mut ewma = Ewma::new(0.3);
        let p1 = rms(mean_squared_error(&mut ewma, &signal));

        let mut mavg = MovingAverage::new(10);
        let p2 = rms(mean_squared_error(&mut mavg, &signal));

        // The scorer resets each predictor first, so the Markov chain
        // learns online from scratch within the cycle.
        let mut markov = MarkovChain::new(-40_000.0, 60_000.0, 16);
        let p3 = rms(mean_squared_error(&mut markov, &signal));

        let mut mlp = MlpPredictor::new(4, 8, 0.02, 20_000.0, 7);
        for &x in &signal {
            mlp.observe(x);
        }
        let p4 = rms(mean_squared_error(&mut mlp, &signal));

        println!(
            "{:<8} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            sc.name(),
            p0,
            p1,
            p2,
            p3,
            p4
        );
    }
    println!("\n(RMS one-step error in kW; lower is better. `mlp` keeps its trained");
    println!("weights across the scorer's reset, so its number reflects a warm net;");
    println!("`markov` learns online from scratch within each cycle.)");
}
