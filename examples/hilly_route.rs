//! Hilly route: the same commute over flat terrain, rolling hills, and a
//! mountain pass, comparing fuel, regeneration capture, and braking
//! losses. Shows the grade-aware dynamics (Eq. 5's `F_g` term) end to
//! end.
//!
//! Run with: `cargo run --release --example hilly_route`

use hev_joint_control::control::analysis::{EnergyAudit, Recorder};
use hev_joint_control::control::{simulate, RewardConfig, RuleBasedController};
use hev_joint_control::cycle::{DriveCycle, StandardCycle};
use hev_joint_control::model::{HevParams, ParallelHev};

fn corrected_fuel(m: &hev_joint_control::control::EpisodeMetrics) -> f64 {
    m.fuel_g - (m.soc_final - m.soc_initial) * 7_800.0 * 3_600.0 / (0.28 * 42_600.0)
}

fn run(label: &str, cycle: &DriveCycle) -> Result<(), Box<dyn std::error::Error>> {
    let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
    let mut rec = Recorder::new(RuleBasedController::default());
    let m = simulate(&mut hev, cycle, &mut rec, &RewardConfig::default());
    let audit = EnergyAudit::of(rec.trace());
    println!(
        "{:<14} {:>12.1} {:>12.1} {:>12.1} {:>11.0}%",
        label,
        corrected_fuel(&m),
        audit.regen_wh,
        audit.friction_wh,
        audit.regen_fraction() * 100.0
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = StandardCycle::Udds.cycle();
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "terrain", "fuel (g)", "regen (Wh)", "friction(Wh)", "regen frac"
    );
    run("flat", &base)?;
    run("rolling 3%", &base.with_rolling_grade(0.03, 800.0))?;
    run("rolling 6%", &base.with_rolling_grade(0.06, 800.0))?;
    run("mountain 9%", &base.with_rolling_grade(0.09, 2_000.0))?;
    println!(
        "\n(fuel is charge-corrected; moderate hills *improve* economy on this\n\
         powertrain: climbs shift the engine into its efficient region and the\n\
         machine recovers nearly all of the descents — only when a descent\n\
         exceeds the machine/battery limits does friction braking take a share)"
    );
    Ok(())
}
