//! Taxi shift: train the joint RL controller on a morning of randomized
//! urban driving, then evaluate every controller on an unseen afternoon
//! shift — the generalization story behind deploying a learned policy in
//! a fleet.
//!
//! Run with: `cargo run --release --example taxi_shift`

use hev_joint_control::control::{
    simulate, CdCsController, EcmsController, EpisodeMetrics, HevPolicy, JointController,
    JointControllerConfig, RewardConfig, RuleBasedController,
};
use hev_joint_control::cycle::{DriveCycle, MicroTripConfig, MicroTripGenerator};
use hev_joint_control::model::{HevParams, ParallelHev};

fn corrected_mpg(m: &EpisodeMetrics) -> f64 {
    m.soc_corrected_mpg(7_800.0, 0.28, 42_600.0)
}

fn evaluate(
    label: &str,
    controller: &mut dyn HevPolicy,
    shift: &DriveCycle,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
    let m = simulate(&mut hev, shift, controller, &RewardConfig::default());
    println!(
        "{:<16} {:>10.1} {:>10.1} {:>10.2} {:>9.4} {:>9}",
        label,
        m.fuel_g,
        corrected_mpg(&m),
        m.total_reward,
        m.soc_final - m.soc_initial,
        m.fallback_steps
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Morning: six randomized urban cycles to train on.
    let mut generator = MicroTripGenerator::new(MicroTripConfig::urban(), 7_011);
    let morning = generator.generate_batch("morning", 6);
    // Afternoon: an unseen evaluation shift from the same traffic
    // statistics.
    let afternoon = generator.generate("afternoon");
    println!(
        "afternoon shift: {:.0} s, {:.1} km\n",
        afternoon.duration_s(),
        afternoon.distance_m() / 1_000.0
    );

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "controller", "fuel (g)", "corr mpg", "reward", "ΔSoC", "fallbacks"
    );

    let mut rule = RuleBasedController::default();
    evaluate("rule-based", &mut rule, &afternoon)?;

    let mut ecms = EcmsController::default();
    evaluate("ecms", &mut ecms, &afternoon)?;

    let mut cdcs = CdCsController::default();
    evaluate("cd/cs", &mut cdcs, &afternoon)?;

    // The joint RL agent: trained on the morning, frozen for the
    // afternoon.
    let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
    let mut agent = JointController::new(JointControllerConfig::proposed());
    agent.train_portfolio(&mut hev, &morning, 60);
    agent.set_training(false);
    evaluate("joint RL", &mut agent, &afternoon)?;

    println!("\n(the RL agent never saw the afternoon shift — its numbers reflect pure");
    println!("generalization from the morning's randomized traffic. ECMS consults the");
    println!("full component models at every step, so it is the strong model-based");
    println!("ceiling here; the heuristics below it have no such knowledge)");
    Ok(())
}
