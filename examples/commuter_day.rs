//! A commuter's day: urban crawl to the freeway, a highway stretch, and
//! an urban arrival — under three HVAC seasons with different preferred
//! auxiliary powers. Shows how the joint controller adapts the auxiliary
//! load to the drive, which is exactly the paper's motivation.
//!
//! Run with: `cargo run --release --example commuter_day`

use hev_joint_control::control::{
    simulate, JointController, JointControllerConfig, RewardConfig, RuleBasedController,
};
use hev_joint_control::cycle::{DriveCycle, ProfileBuilder, StandardCycle};
use hev_joint_control::model::{AuxParams, HevParams, ParallelHev};

fn commute() -> DriveCycle {
    // Urban leg to the on-ramp.
    let urban_out = ProfileBuilder::new("urban-out")
        .idle(10.0)
        .trip(30.0, 9.0, 20.0, 8.0, 12.0)
        .trip(45.0, 13.0, 25.0, 10.0, 8.0)
        .build()
        .expect("profile is non-empty");
    // Highway leg (a slice of HWFET).
    let hwfet = StandardCycle::Hwfet.cycle();
    let highway = hwfet.slice(0, 300).expect("HWFET is longer than 300 s");
    // Urban arrival.
    let urban_in = ProfileBuilder::new("urban-in")
        .trip(40.0, 11.0, 18.0, 9.0, 10.0)
        .trip(25.0, 8.0, 12.0, 7.0, 15.0)
        .build()
        .expect("profile is non-empty");
    urban_out.concat(&highway).concat(&urban_in)
}

fn season_params(name: &str) -> AuxParams {
    match name {
        // Mild spring day: only lights and electronics.
        "mild" => AuxParams {
            preferred_power_w: 300.0,
            ..AuxParams::default()
        },
        // Summer: A/C on.
        "summer" => AuxParams {
            preferred_power_w: 900.0,
            ..AuxParams::default()
        },
        // Winter: electric heating — auxiliaries dominate.
        _ => AuxParams {
            preferred_power_w: 1_300.0,
            ..AuxParams::default()
        },
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cycle = commute();
    println!(
        "commute: {:.0} s, {:.1} km\n",
        cycle.duration_s(),
        cycle.distance_m() / 1_000.0
    );
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>12}",
        "season", "RL fuel (g)", "rule fuel (g)", "RL utility", "rule utility"
    );

    for season in ["mild", "summer", "winter"] {
        let mut params = HevParams::default_parallel_hev();
        params.aux = season_params(season);

        // The reward's preferred auxiliary power follows the season via
        // the vehicle's utility model; the controller config is shared.
        let mut hev = ParallelHev::new(params.clone(), 0.6)?;
        let mut agent = JointController::new(JointControllerConfig::proposed());
        agent.train(&mut hev, &cycle, 100);
        let rl = agent.evaluate(&mut hev, &cycle);

        let mut hev_rule = ParallelHev::new(params, 0.6)?;
        let mut rule = RuleBasedController::default();
        let rb = simulate(&mut hev_rule, &cycle, &mut rule, &RewardConfig::default());

        println!(
            "{:<8} {:>14.1} {:>14.1} {:>12.3} {:>12.3}",
            season,
            rl.fuel_g,
            rb.fuel_g,
            rl.mean_utility(),
            rb.mean_utility()
        );
    }
    println!(
        "\n(note: the rule-based policy always runs the auxiliaries at 600 W, so in \
         non-mild seasons its utility collapses while the joint controller tracks \
         the season's preferred power)"
    );
    Ok(())
}
