//! Fleet tuning: sweep the fuel/utility weighting factor `w` over a
//! portfolio of randomized urban cycles and print the resulting Pareto
//! trade-off (fuel vs auxiliary utility). This is how an operator would
//! pick `w` for a fleet's comfort/economy policy.
//!
//! Run with: `cargo run --release --example fleet_tuning`

use hev_joint_control::control::{JointController, JointControllerConfig};
use hev_joint_control::cycle::{MicroTripConfig, MicroTripGenerator};
use hev_joint_control::model::{HevParams, ParallelHev};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small portfolio of randomized urban cycles: train on three,
    // evaluate on a held-out fourth.
    let mut generator = MicroTripGenerator::new(MicroTripConfig::urban(), 99);
    let cycles = generator.generate_batch("fleet", 4);
    let (train_set, eval_cycle) = (&cycles[..3], &cycles[3]);
    println!(
        "portfolio: 3 training cycles + 1 held-out ({:.0} s, {:.1} km)\n",
        eval_cycle.duration_s(),
        eval_cycle.distance_m() / 1_000.0
    );

    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>8}",
        "w", "fuel (g)", "mean utility", "reward", "ΔSoC"
    );
    for w in [0.0, 0.2, 0.4, 1.0, 2.0] {
        let mut cfg = JointControllerConfig::proposed();
        cfg.reward.aux_weight = w;
        let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
        let mut agent = JointController::new(cfg);
        agent.train_portfolio(&mut hev, train_set, 25);
        let m = agent.evaluate(&mut hev, eval_cycle);
        println!(
            "{:<8.1} {:>12.1} {:>14.3} {:>12.2} {:>8.4}",
            w,
            m.fuel_g,
            m.mean_utility(),
            m.total_reward,
            m.soc_final - m.soc_initial
        );
    }
    println!(
        "\n(higher w buys auxiliary comfort with fuel; w ≈ 0.4 is the default \
         reproduction setting)"
    );
    Ok(())
}
