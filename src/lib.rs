//! Umbrella crate for the DAC'15 joint HEV control reproduction.
//!
//! Re-exports the whole public API so examples and downstream users can
//! depend on a single crate:
//!
//! * [`cycle`] — driving cycles ([`drive_cycle`]);
//! * [`model`] — the parallel HEV model ([`hev_model`]);
//! * [`rl`] — tabular reinforcement learning ([`hev_rl`]);
//! * [`predict`] — driving-profile predictors ([`hev_predict`]);
//! * [`control`] — the joint controller, baselines, and harness
//!   ([`hev_control`]);
//! * [`serve`] — the fault-hardened fleet control service
//!   ([`hev_serve`]).
//!
//! # Quickstart
//!
//! ```no_run
//! use hev_joint_control::control::{JointController, JointControllerConfig};
//! use hev_joint_control::cycle::StandardCycle;
//! use hev_joint_control::model::{HevParams, ParallelHev};
//!
//! let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
//! let mut agent = JointController::new(JointControllerConfig::proposed());
//! let cycle = StandardCycle::Udds.cycle();
//! agent.train(&mut hev, &cycle, 300);
//! println!("{:?}", agent.evaluate(&mut hev, &cycle));
//! # Ok::<(), hev_joint_control::model::ParamError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use drive_cycle as cycle;
pub use hev_control as control;
pub use hev_model as model;
pub use hev_predict as predict;
pub use hev_rl as rl;
pub use hev_serve as serve;
