//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro over `arg in strategy` bindings,
//! range and `collection::vec` strategies, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: cases are derived from a per-test seed (an FNV
//!   hash of the test name) and the case index, so failures reproduce
//!   exactly on every run and machine. `PROPTEST_CASES` still controls
//!   the case count (default 64).
//! * **No shrinking**: a failing case reports the concrete inputs (all
//!   strategies here produce `Debug` values) instead of a minimized one.
//! * `*.proptest-regressions` files are not consulted.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

/// Re-export so the generated tests can seed case RNGs.
pub use rand::Rng as CaseRng;

/// Default number of cases per property (overridable via
/// `PROPTEST_CASES`).
pub const DEFAULT_CASES: u32 = 64;

/// Error raised by a failing `prop_assert!` family macro. Carries the
/// formatted failure message.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// Outcome of one generated case: pass, fail, or discard
/// (`prop_assume!`).
pub type TestCaseResult = Result<(), TestCaseError>;

/// Resolves the case budget from `PROPTEST_CASES`.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CASES)
}

/// FNV-1a hash of the test name: the per-test seed root.
pub fn test_seed(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The RNG driving one generated case.
pub fn case_rng(test_seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(test_seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Blanket impl so `&strategy` works where a strategy is expected.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec length range must be non-empty");
            SizeRange(r)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, min..max)` or `vec(element, n)`: a vector of
    /// `element` samples whose length is uniform in the given range
    /// (or exactly `n`).
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test file needs.
    /// Upstream-compatible alias for the strategy/collection namespace.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
        TestCaseError,
    };
}

/// Defines deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn holds(x in 0.0f64..1.0, n in 1usize..10) {
///         prop_assert!(x < n as f64);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let seed = $crate::test_seed(concat!(module_path!(), "::", stringify!($name)));
                let total = $crate::cases();
                for case in 0..total {
                    let mut __proptest_rng = $crate::case_rng(seed, case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __proptest_rng);)*
                    let __proptest_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)* ""),
                        $(&$arg),*
                    );
                    let __proptest_outcome: $crate::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err($crate::TestCaseError(msg)) = __proptest_outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case,
                            total,
                            msg,
                            __proptest_inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a formatted message unless the condition
/// holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // `if cond {} else {}` rather than `if !cond {}` so clippy's
        // negation lints never fire on the caller's expression.
        if $cond {
        } else {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (counts as a pass) unless the assumption
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..10.0, n in 1usize..5) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(-1.0f64..1.0, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for &x in &v {
                prop_assert!((-1.0..1.0).contains(&x));
            }
        }

        #[test]
        fn assume_discards(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn just_yields_constant(k in Just(7u64)) {
            prop_assert_eq!(k, 7);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let s = super::test_seed("a::b::c");
        let mut r1 = super::case_rng(s, 3);
        let mut r2 = super::case_rng(s, 3);
        use rand::Rng;
        assert_eq!(r1.gen::<f64>(), r2.gen::<f64>());
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failure_reports_inputs() {
        proptest! {
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x was {}", x);
            }
        }
        always_fails();
    }
}
