//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API the `hev-bench` crate
//! uses (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `Bencher::iter` / `iter_batched`, `black_box`) backed by a simple
//! median-of-samples wall-clock harness. Statistical machinery
//! (outlier detection, HTML reports) is intentionally absent; output is
//! one line per benchmark: median, mean, and iterations per sample.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// benchmarked computation.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The stand-in re-runs setup
/// per iteration for every variant; the enum exists for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Times `routine`, auto-calibrating the per-sample iteration count
    /// so each sample runs ≥ ~1 ms.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, group: &str, name: &str) {
        if self.samples.is_empty() {
            println!("{group}/{name}: no samples recorded");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{group}/{name}: median {} mean {} ({} samples x {} iters)",
            fmt_time(median),
            fmt_time(mean),
            per_iter.len(),
            self.iters_per_sample
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        b.report(&self.name, name);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_count: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_count = self.sample_count;
        BenchmarkGroup {
            name: name.into(),
            sample_count,
            _criterion: self,
        }
    }

    /// Runs and reports one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        b.report("bench", name);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_without_panicking() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        group.bench_function("rev", |b| {
            b.iter_batched(
                || vec![1, 2, 3],
                |mut v| {
                    v.reverse();
                    v
                },
                BatchSize::SmallInput,
            )
        });
    }
}
