//! Offline stand-in for the `serde` crate.
//!
//! The real serde could not be fetched (no registry access), so this
//! crate provides a compatible *surface* for the workspace: the
//! [`Serialize`] / [`Deserialize`] traits and their derive macros. The
//! design is deliberately simpler than upstream serde: both traits go
//! through a self-describing [`Value`] tree rather than a generic
//! serializer/deserializer pair, which is all `serde_json::to_string` /
//! `from_str` (the only consumers in this workspace) need.
//!
//! Round-trip fidelity is exact for every type the workspace derives:
//! `f64` fields serialize via Rust's shortest-round-trip formatting and
//! parse back bit-identically, which the controller-snapshot and
//! determinism tests rely on.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, VecDeque};

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable description of the
/// mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// A type-mismatch error.
    pub fn ty(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, got {got:?}"))
    }

    /// A missing-field error.
    pub fn missing(field: &str) -> Self {
        Error(format!("missing field '{field}'"))
    }
}

/// Looks up a field in a serialized map (derive-generated code calls
/// this).
pub fn map_get<'v>(map: &'v [(String, Value)], key: &str) -> Result<&'v Value, Error> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::missing(key))
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value of this type.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::ty(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::ty(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            other => Err(Error::ty("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::ty("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::ty("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

/// Deserializing into `&'static str` leaks the string; it exists so
/// structs holding static table labels can derive `Deserialize`. The
/// workspace only round-trips such values in tests, where the leak is
/// bounded and harmless.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

/// A `Value` serializes as itself, so structs can carry pre-built JSON
/// trees (e.g. a telemetry snapshot attached to a run-log event) through
/// derived `Serialize` impls.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// The identity deserialization: parsing into `Value` yields the raw
/// JSON tree unchanged.
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::ty("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items).map_err(|_| Error(format!("expected {N} elements, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::ty("tuple", v))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error(format!(
                        "expected {expected}-tuple, got {} elements",
                        seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Entries sorted by serialized key so output is deterministic
        // regardless of hasher state.
        let mut entries: Vec<Value> = self
            .iter()
            .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
            .collect();
        entries.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Seq(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v.as_seq().ok_or_else(|| Error::ty("map entries", v))?;
        let mut out = HashMap::with_capacity_and_hasher(seq.len(), S::default());
        for entry in seq {
            let pair = entry
                .as_seq()
                .ok_or_else(|| Error::ty("map entry", entry))?;
            if pair.len() != 2 {
                return Err(Error(format!("map entry has {} elements", pair.len())));
            }
            out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Key order is the map's own (Ord) order: deterministic without
        // the debug-format sort the HashMap impl needs.
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v.as_seq().ok_or_else(|| Error::ty("map entries", v))?;
        let mut out = BTreeMap::new();
        for entry in seq {
            let pair = entry
                .as_seq()
                .ok_or_else(|| Error::ty("map entry", entry))?;
            if pair.len() != 2 {
                return Err(Error(format!("map entry has {} elements", pair.len())));
            }
            out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn composites_round_trip() {
        let v = vec![(1usize, 2usize, 0.5f64), (3, 4, -0.25)];
        assert_eq!(
            Vec::<(usize, usize, f64)>::from_value(&v.to_value()).unwrap(),
            v
        );
        let o: Option<f64> = Some(2.0);
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), o);
        let none: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&none.to_value()).unwrap(), none);
        let arr = [1usize, 2, 3];
        assert_eq!(<[usize; 3]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn hashmap_round_trips_and_serializes_deterministically() {
        let mut bt: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        bt.insert((9, 1), -0.25);
        bt.insert((2, 0), 0.5);
        let bv = bt.to_value();
        // BTreeMap serializes in key order regardless of insertion order.
        assert_eq!(
            bv,
            Value::Seq(vec![
                Value::Seq(vec![(2usize, 0usize).to_value(), 0.5f64.to_value()]),
                Value::Seq(vec![(9usize, 1usize).to_value(), (-0.25f64).to_value()]),
            ])
        );
        assert_eq!(
            BTreeMap::<(usize, usize), f64>::from_value(&bv).unwrap(),
            bt
        );
        let mut m: HashMap<(usize, usize), f64> = HashMap::new();
        m.insert((0, 1), 0.5);
        m.insert((2, 3), -1.5);
        let a = m.to_value();
        let b = m.clone().to_value();
        assert_eq!(a, b);
        assert_eq!(HashMap::<(usize, usize), f64>::from_value(&a).unwrap(), m);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(bool::from_value(&Value::Float(1.0)).is_err());
        assert!(f64::from_value(&Value::Str("x".into())).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
