//! Offline stand-in for the `serde_json` crate.
//!
//! Bridges the serde stand-in's [`serde::Value`] tree to JSON text.
//! Floats are written with Rust's shortest-round-trip formatting, so
//! every finite `f64` parses back bit-identically — the
//! controller-snapshot tests depend on this.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Parses a JSON string into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; mirror upstream serde_json, which
        // writes null.
        out.push_str("null");
        return;
    }
    // `{:?}` is Rust's shortest representation that round-trips through
    // `str::parse::<f64>`. It may lack a fraction or use an exponent
    // ("1e-10"), both of which are valid JSON numbers — except a bare
    // integer like "1", which parses back as an integer, so force a
    // fraction in that case to preserve the Float type.
    let s = format!("{x:?}");
    if s.contains(['.', 'e', 'E']) {
        out.push_str(&s);
    } else {
        out.push_str(&s);
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error(format!(
                "unexpected character '{}' at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error("invalid unicode escape".into()))?);
                        }
                        other => {
                            return Err(Error(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // A literal with more digits than f64 resolves is the point: the
    // shortest-round-trip formatter must still reproduce its bits.
    #[allow(clippy::excessive_precision)]
    fn floats_round_trip_bit_exactly() {
        for &x in &[
            0.0,
            -0.0,
            1.5,
            std::f64::consts::PI,
            1e-300,
            -2.2250738585072014e-308,
            123456789.123456789,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "for {x} via {json}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        let json = to_string(&2.0f64).unwrap();
        assert_eq!(json, "2.0");
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v: Vec<(String, Vec<f64>)> = vec![
            ("a\"b\\c\n".into(), vec![1.0, -2.5]),
            ("unicode \u{1F600} ok".into(), vec![]),
        ];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, Vec<f64>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn options_round_trip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(
            from_str::<Option<u32>>(&to_string(&some).unwrap()).unwrap(),
            some
        );
        assert_eq!(
            from_str::<Option<u32>>(&to_string(&none).unwrap()).unwrap(),
            none
        );
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str("\"a\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "aé😀");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<f64>("1.5.2").is_err());
    }
}
