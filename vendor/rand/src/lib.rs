//! Offline stand-in for the `rand` crate.
//!
//! The crates.io registry is unreachable in this build environment, so
//! this vendored crate provides the exact subset of the `rand` 0.8 API
//! the workspace uses: the [`Rng`] and [`SeedableRng`] traits,
//! [`rngs::StdRng`], uniform range sampling, and `gen::<f64>()` /
//! `gen::<bool>()`.
//!
//! Determinism is a hard requirement of the parallel training harness:
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64, which is
//! pure integer arithmetic — identical streams on every platform,
//! toolchain, and thread count. The stream differs from upstream
//! `rand`'s StdRng (ChaCha12); nothing in this workspace depends on the
//! upstream stream, only on seed-reproducibility.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: the canonical 64-bit seed expander.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled from a uniform bit stream (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value from the 64-bit source.
    fn sample_from(src: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_from(src: &mut dyn FnMut() -> u64) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (src() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_from(src: &mut dyn FnMut() -> u64) -> Self {
        (src() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_from(src: &mut dyn FnMut() -> u64) -> Self {
        src() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_from(src: &mut dyn FnMut() -> u64) -> Self {
        src()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_from(src: &mut dyn FnMut() -> u64) -> Self {
        (src() >> 32) as u32
    }
}

impl Standard for u8 {
    #[inline]
    fn sample_from(src: &mut dyn FnMut() -> u64) -> Self {
        (src() >> 56) as u8
    }
}

impl Standard for usize {
    #[inline]
    fn sample_from(src: &mut dyn FnMut() -> u64) -> Self {
        src() as usize
    }
}

/// Multiply-shift bounded sampling: uniform in `[0, n)` without modulo
/// bias for the table sizes used here (n ≪ 2^64).
#[inline]
fn bounded(src: &mut dyn FnMut() -> u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((src() as u128 * n as u128) >> 64) as u64
}

/// Types [`Rng::gen_range`] can sample uniformly from a range. Mirrors
/// upstream rand's `SampleUniform`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, src: &mut dyn FnMut() -> u64) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, src: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(lo: Self, hi: Self, src: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(bounded(src, span) as $t)
            }
            #[inline]
            fn sample_inclusive(lo: Self, hi: Self, src: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return src() as $t;
                }
                lo.wrapping_add(bounded(src, span) as $t)
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(lo: Self, hi: Self, src: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_from(src);
                lo + u * (hi - lo)
            }
            #[inline]
            fn sample_inclusive(lo: Self, hi: Self, src: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_from(src);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
///
/// Shaped like upstream rand: the sampled type `T` is a trait
/// parameter, and each range shape has ONE blanket impl generic over
/// `T`. Both properties matter for inference — `rng.gen_range(0.7..1.3)`
/// must unify `T` with the literal's `{float}` variable immediately so
/// surrounding arithmetic (and float-literal fallback) can pin it to
/// `f64`, exactly as the real crate behaves.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, src: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from(self, src: &mut dyn FnMut() -> u64) -> T {
        T::sample_half_open(self.start, self.end, src)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from(self, src: &mut dyn FnMut() -> u64) -> T {
        T::sample_inclusive(*self.start(), *self.end(), src)
    }
}

/// A source of randomness (the subset of `rand::Rng` this workspace
/// uses).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a value of type `T` (`f64` in `[0, 1)`, fair `bool`, …).
    fn gen<T: Standard>(&mut self) -> T {
        let mut src = || self.next_u64();
        T::sample_from(&mut src)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut src = || self.next_u64();
        range.sample_from(&mut src)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable deterministic generators (the subset of `rand::SeedableRng`
/// this workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    ///
    /// Seeded via SplitMix64 so that every `u64` seed yields a
    /// well-mixed, platform-independent stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The raw xoshiro256++ state. Together with [`StdRng::from_state`]
        /// this lets callers checkpoint a generator mid-stream and later
        /// resume the *exact* same draw sequence (the upstream `rand` crate
        /// exposes the same capability through `Serialize`/`Deserialize`
        /// on `StdRng`, which this stand-in does not implement).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        ///
        /// An all-zero state is a fixed point of xoshiro256++ and can never
        /// be produced by [`super::SeedableRng::seed_from_u64`]; it is
        /// remapped to the SplitMix64 increment like the seeding guard.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard local.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    /// Alias kept for API compatibility: callers that ask for the small
    /// generator get the same deterministic stream type.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_interval_is_half_open() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn state_roundtrip_resumes_exact_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn from_state_remaps_all_zero_fixed_point() {
        // All-zero is xoshiro's fixed point; `from_state` must remap it
        // to a state that actually generates (the sparse early outputs
        // may repeat, so check the stream varies rather than any pair).
        let mut r = StdRng::from_state([0, 0, 0, 0]);
        let outputs: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(outputs.iter().any(|&x| x != outputs[0]));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let k = r.gen_range(0..7usize);
            assert!(k < 7);
            let x = r.gen_range(-2.5..4.0);
            assert!((-2.5..4.0).contains(&x));
            let y = r.gen_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn bounded_sampling_hits_every_value() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_fair_enough() {
        let mut r = StdRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn works_through_mut_ref_and_unsized() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        // Passing `&mut r` by value exercises `impl Rng for &mut R`.
        fn take<R: Rng>(mut rng: R) -> usize {
            rng.gen_range(0..3usize)
        }
        let mut r = StdRng::seed_from_u64(9);
        let _ = draw(&mut r);
        let _ = take(&mut r);
    }
}
