//! Derive macros for the offline serde stand-in.
//!
//! `syn`/`quote` are unavailable (no registry access), so the input
//! item is parsed directly from the token stream. Supported shapes —
//! which cover every derive site in this workspace:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, tuple, and struct variants;
//! * bare type parameters (`struct S<A, B> { .. }`), which get a
//!   `Serialize`/`Deserialize` bound in the generated impl.
//!
//! Field types never need to be parsed: generated code calls
//! `serde::Deserialize::from_value` and lets inference pick the field's
//! type from the struct definition itself.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its name, and whether it carries
/// `#[serde(default)]` (deserialization falls back to
/// `Default::default()` when the serialized map lacks the key — how
/// newer layouts read older reports/checkpoints).
struct NamedField {
    name: String,
    default: bool,
}

/// One parsed field: its name (named fields) or index (tuple fields).
enum Fields {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { fields: Fields },
    Enum { variants: Vec<Variant> },
}

struct Parsed {
    name: String,
    generics: Vec<String>,
    item: Item,
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skips attributes (`#[...]` / `#![...]`) and visibility
/// (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: usize) -> usize {
    scan_attrs_and_vis(tokens, i).0
}

/// Like [`skip_attrs_and_vis`], but also reports whether one of the
/// skipped attributes was `#[serde(default)]`.
fn scan_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut has_default = false;
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            i += 1; // '#'
            if i < tokens.len() && is_punct(&tokens[i], '!') {
                i += 1;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                has_default |= is_serde_default_attr(g);
                i += 1;
            }
            continue;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
        }
        return (i, has_default);
    }
}

/// Whether an attribute's bracket group is exactly `serde(default)`.
fn is_serde_default_attr(group: &proc_macro::Group) -> bool {
    if group.delimiter() != Delimiter::Bracket {
        return false;
    }
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let [TokenTree::Ident(name), TokenTree::Group(args)] = tokens.as_slice() else {
        return false;
    };
    if name.to_string() != "serde" || args.delimiter() != Delimiter::Parenthesis {
        return false;
    }
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    matches!(inner.as_slice(), [TokenTree::Ident(id)] if id.to_string() == "default")
}

/// Parses `<A, B>` (bare type parameters only) starting at `i`
/// (pointing at `<`). Returns (params, index past `>`).
fn parse_generics(tokens: &[TokenTree], mut i: usize) -> (Vec<String>, usize) {
    let mut params = Vec::new();
    if i >= tokens.len() || !is_punct(&tokens[i], '<') {
        return (params, i);
    }
    i += 1;
    while i < tokens.len() && !is_punct(&tokens[i], '>') {
        match &tokens[i] {
            TokenTree::Ident(id) => params.push(id.to_string()),
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => {
                panic!("serde stand-in derive supports only bare type parameters, found {other}")
            }
        }
        i += 1;
    }
    (params, i + 1)
}

/// Parses the fields of a braced group: named fields only.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<NamedField> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields: Vec<NamedField> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, default) = scan_attrs_and_vis(&tokens, i);
        i = next;
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected field name, found {}", tokens[i]);
        };
        fields.push(NamedField {
            name: name.to_string(),
            default,
        });
        i += 1;
        assert!(
            i < tokens.len() && is_punct(&tokens[i], ':'),
            "expected ':' after field name {}",
            fields.last().unwrap().name
        );
        i += 1;
        // Skip the type: advance to the next top-level ',' tracking
        // angle-bracket depth (tuples/arrays are nested groups already).
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            if angle_depth == 0 && is_punct(&tokens[i], ',') {
                i += 1;
                break;
            }
            if is_punct(&tokens[i], '<') {
                angle_depth += 1;
            } else if is_punct(&tokens[i], '>') {
                angle_depth -= 1;
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a parenthesized tuple group (top-level commas,
/// angle-depth aware).
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_token_since_comma = true;
    for t in &tokens {
        if is_punct(t, '<') {
            angle_depth += 1;
        } else if is_punct(t, '>') {
            angle_depth -= 1;
        } else if angle_depth == 0 && is_punct(t, ',') {
            count += 1;
            saw_token_since_comma = false;
            continue;
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_enum_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected variant name, found {}", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        if i < tokens.len() && is_punct(&tokens[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let TokenTree::Ident(kw) = &tokens[i] else {
        panic!("expected 'struct' or 'enum', found {}", tokens[i]);
    };
    let kind = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("expected item name, found {}", tokens[i]);
    };
    let name = name.to_string();
    i += 1;
    let (generics, next) = parse_generics(&tokens, i);
    i = next;
    let item = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                fields: Fields::Named(parse_named_fields(g)),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                fields: Fields::Tuple(count_tuple_fields(g)),
            },
            Some(t) if is_punct(t, ';') => Item::Struct {
                fields: Fields::Unit,
            },
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                variants: parse_enum_variants(g),
            },
            other => panic!("unsupported enum body: {other:?}"),
        },
        other => panic!("serde stand-in derive supports structs and enums, found '{other}'"),
    };
    Parsed {
        name,
        generics,
        item,
    }
}

fn impl_header(trait_name: &str, p: &Parsed) -> String {
    if p.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", p.name)
    } else {
        let bounded: Vec<String> = p
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{}>",
            bounded.join(", "),
            p.name,
            p.generics.join(", ")
        )
    }
}

fn serialize_fields_named(fields: &[NamedField], accessor: &str) -> String {
    let pushes: Vec<String> = fields
        .iter()
        .map(|f| {
            let f = &f.name;
            format!(
                "m.push((::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value({accessor}{f})));"
            )
        })
        .collect();
    format!(
        "{{ let mut m = ::std::vec::Vec::new(); {} ::serde::Value::Map(m) }}",
        pushes.join(" ")
    )
}

/// The deserialization initializer of one named field: required fields
/// propagate the missing-key error; `#[serde(default)]` fields fall
/// back to `Default::default()` when the key is absent (how a v2 reader
/// keeps parsing v1 payloads).
fn deserialize_field_named(f: &NamedField) -> String {
    let name = &f.name;
    if f.default {
        format!(
            "{name}: match ::serde::map_get(m, \"{name}\") {{ \
             ::std::result::Result::Ok(v) => ::serde::Deserialize::from_value(v)?, \
             ::std::result::Result::Err(_) => ::std::default::Default::default() }},"
        )
    } else {
        format!(
            "{name}: ::serde::Deserialize::from_value(\
             ::serde::map_get(m, \"{name}\")?)?,"
        )
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let body = match &p.item {
        Item::Struct { fields } => match fields {
            Fields::Named(names) => serialize_fields_named(names, "&self."),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            }
            Fields::Unit => format!(
                "::serde::Value::Str(::std::string::String::from(\"{}\"))",
                p.name
            ),
        },
        Item::Enum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "Self::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "Self::{vname}({}) => ::serde::Value::Map(vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(names) => {
                            let inner = serialize_fields_named(names, "");
                            let binds: Vec<String> = names.iter().map(|f| f.name.clone()).collect();
                            format!(
                                "Self::{vname} {{ {} }} => ::serde::Value::Map(vec![(\
                                 ::std::string::String::from(\"{vname}\"), {inner})]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header("Serialize", &p)
    );
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let name = &p.name;
    let body = match &p.item {
        Item::Struct { fields } => match fields {
            Fields::Named(names) => {
                let inits: Vec<String> = names.iter().map(deserialize_field_named).collect();
                format!(
                    "let m = v.as_map().ok_or_else(|| ::serde::Error::ty(\"{name}\", v))?; \
                     Ok(Self {{ {} }})",
                    inits.join(" ")
                )
            }
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?,"))
                    .collect();
                format!(
                    "let seq = v.as_seq().ok_or_else(|| ::serde::Error::ty(\"{name}\", v))?; \
                     if seq.len() != {n} {{ return Err(::serde::Error::ty(\"{name}\", v)); }} \
                     Ok(Self({}))",
                    inits.join(" ")
                )
            }
            Fields::Unit => format!(
                "match v.as_str() {{ Some(\"{name}\") => Ok(Self), \
                 _ => Err(::serde::Error::ty(\"{name}\", v)) }}"
            ),
        },
        Item::Enum { variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("Some(\"{0}\") => return Ok(Self::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ \
                                 let seq = inner.as_seq().ok_or_else(|| \
                                 ::serde::Error::ty(\"{name}::{vname}\", inner))?; \
                                 if seq.len() != {n} {{ return Err(::serde::Error::ty(\
                                 \"{name}::{vname}\", inner)); }} \
                                 return Ok(Self::{vname}({})); }}",
                                inits.join(" ")
                            ))
                        }
                        Fields::Named(names) => {
                            let inits: Vec<String> =
                                names.iter().map(deserialize_field_named).collect();
                            Some(format!(
                                "\"{vname}\" => {{ \
                                 let m = inner.as_map().ok_or_else(|| \
                                 ::serde::Error::ty(\"{name}::{vname}\", inner))?; \
                                 return Ok(Self::{vname} {{ {} }}); }}",
                                inits.join(" ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v.as_str() {{ {} _ => {{}} }} \
                 if let Some(entries) = v.as_map() {{ \
                 if entries.len() == 1 {{ \
                 let (tag, inner) = &entries[0]; \
                 match tag.as_str() {{ {} _ => {{}} }} }} }} \
                 Err(::serde::Error::ty(\"{name}\", v))",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    let out = format!(
        "{} {{ fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        impl_header("Deserialize", &p)
    );
    out.parse().expect("generated Deserialize impl parses")
}
