//! Property-based tests of the physical invariants the whole stack
//! relies on.

use hev_joint_control::control::{fallback_control, InnerOptimizer, RewardConfig};
use hev_joint_control::model::{
    ControlInput, HevParams, OperatingMode, ParallelHev, FUEL_LHV_J_PER_G,
};
use proptest::prelude::*;

fn hev_at(soc: f64) -> ParallelHev {
    ParallelHev::new(HevParams::default_parallel_hev(), soc).expect("valid defaults")
}

proptest! {
    /// Any feasible step keeps the state of charge inside the
    /// charge-sustaining window and burns non-negative fuel.
    #[test]
    fn feasible_steps_preserve_invariants(
        v in 0.0f64..35.0,
        a in -2.5f64..2.0,
        grade in -0.06f64..0.06,
        i in -80.0f64..100.0,
        gear in 0usize..5,
        p_aux in 100.0f64..1500.0,
        soc in 0.42f64..0.78,
    ) {
        let mut hev = hev_at(soc);
        let demand = hev.demand(v, a, grade);
        let control = ControlInput { battery_current_a: i, gear, p_aux_w: p_aux };
        if let Ok(o) = hev.step(&demand, &control, 1.0) {
            prop_assert!(o.fuel_g >= 0.0);
            prop_assert!(o.fuel_rate_g_per_s >= 0.0);
            prop_assert!((0.40..=0.80).contains(&o.soc_after),
                "soc {} left the window", o.soc_after);
            prop_assert!(o.friction_brake_torque_nm <= 0.0);
            prop_assert!(o.soc_before == soc);
            prop_assert_eq!(hev.soc(), o.soc_after);
        }
    }

    /// Energy conservation: whenever the engine is on, the chemical fuel
    /// power must exceed the useful output (wheel power plus net battery
    /// charging plus the auxiliary load) — losses are non-negative.
    #[test]
    fn fuel_power_bounds_useful_power(
        v in 3.0f64..30.0,
        a in -0.5f64..1.5,
        i in -60.0f64..60.0,
        gear in 0usize..5,
    ) {
        let hev = hev_at(0.6);
        let demand = hev.demand(v, a, 0.0);
        let control = ControlInput { battery_current_a: i, gear, p_aux_w: 600.0 };
        if let Ok(o) = hev.peek(&demand, &control, 1.0) {
            if o.fuel_rate_g_per_s > 0.0 && o.ice_torque_nm > 0.0 {
                let fuel_power = o.fuel_rate_g_per_s * FUEL_LHV_J_PER_G;
                // Useful output chargeable to fuel: wheel power minus
                // whatever the battery contributed (negative P_batt means
                // the battery *stored* energy on top of propulsion).
                let useful = demand.power_demand_w.max(0.0) - o.battery_power_w;
                prop_assert!(fuel_power > useful - 1.0,
                    "fuel {fuel_power} W < useful {useful} W");
            }
        }
    }

    /// Braking never consumes fuel, and regeneration never discharges.
    #[test]
    fn braking_is_fuel_free(
        v in 3.0f64..30.0,
        a in -3.0f64..-0.3,
        i in -60.0f64..0.0,
        gear in 0usize..5,
    ) {
        let hev = hev_at(0.6);
        let demand = hev.demand(v, a, 0.0);
        prop_assume!(demand.wheel_torque_nm < 0.0);
        let control = ControlInput { battery_current_a: i, gear, p_aux_w: 600.0 };
        if let Ok(o) = hev.peek(&demand, &control, 1.0) {
            prop_assert_eq!(o.fuel_g, 0.0);
            // During braking the battery may still discharge, but only to
            // cover the auxiliary load when the (demand-limited) regen
            // cannot — never to propel.
            prop_assert!(
                o.battery_power_w <= o.p_aux_w + 1.0,
                "battery delivered {} W while braking",
                o.battery_power_w
            );
            prop_assert!(matches!(
                o.mode,
                OperatingMode::RegenBraking | OperatingMode::FrictionBraking
            ));
        }
    }

    /// At every drivable operating point across the whole charge window,
    /// either a feasible control exists, or the demand exceeds the
    /// powertrain's capability and some *clipped* demand is feasible
    /// (the trace-miss path the harness takes).
    #[test]
    fn fallback_or_clipping_always_succeeds(
        v in 0.0f64..33.0,
        a in -2.0f64..1.5,
        soc in 0.40f64..0.80,
    ) {
        let hev = hev_at(soc);
        let demand = hev.demand(v, a, 0.0);
        let control = fallback_control(&hev, &demand, 1.0);
        if hev.peek(&demand, &control, 1.0).is_err() {
            // Demand beyond capability: clipping must converge.
            let mut ok = false;
            let mut factor = 0.9;
            for _ in 0..60 {
                let clipped = hev.demand(v, a * factor, 0.0);
                let c = fallback_control(&hev, &clipped, 1.0);
                if hev.peek(&clipped, &c, 1.0).is_ok() {
                    ok = true;
                    break;
                }
                factor *= 0.9;
            }
            prop_assert!(ok, "clipping never converged at v={v} a={a} soc={soc}");
        }
    }

    /// The inner optimizer's result is never worse than pinning the
    /// auxiliary power at the preferred level in the same gear.
    #[test]
    fn inner_opt_dominates_fixed_aux(
        v in 0.0f64..30.0,
        a in -1.5f64..1.5,
        i in -40.0f64..80.0,
    ) {
        let hev = hev_at(0.6);
        let reward = RewardConfig::default();
        let demand = hev.demand(v, a, 0.0);
        let free = InnerOptimizer::default().resolve(&hev, &demand, i, 1.0, &reward);
        let fixed = InnerOptimizer::with_fixed_aux(600.0)
            .resolve(&hev, &demand, i, 1.0, &reward);
        if let (Some(f), Some(p)) = (free, fixed) {
            // The free optimizer's grid does not contain 600 W exactly;
            // its refinement gets within micro-reward of it.
            prop_assert!(f.reward >= p.reward - 1e-6,
                "free {} < fixed {}", f.reward, p.reward);
        }
    }

    /// Peek is pure: repeating it yields identical outcomes and leaves
    /// the vehicle untouched.
    #[test]
    fn peek_is_pure(
        v in 0.0f64..30.0,
        a in -2.0f64..1.5,
        i in -60.0f64..80.0,
        gear in 0usize..5,
    ) {
        let hev = hev_at(0.6);
        let demand = hev.demand(v, a, 0.0);
        let control = ControlInput { battery_current_a: i, gear, p_aux_w: 600.0 };
        let first = hev.peek(&demand, &control, 1.0);
        let second = hev.peek(&demand, &control, 1.0);
        prop_assert_eq!(format!("{first:?}"), format!("{second:?}"));
        prop_assert_eq!(hev.soc(), 0.6);
    }
}
