//! Integration tests of API composition across crates: predictor
//! stacking inside the controller, checkpoint/restore, and policy-map
//! export.

use hev_joint_control::control::{JointController, JointControllerConfig, PolicyTable};
use hev_joint_control::cycle::StandardCycle;
use hev_joint_control::model::{HevParams, ParallelHev};
use hev_joint_control::predict::{Ensemble, Ewma, Horizon, MarkovChain, MovingAverage};

fn hev() -> ParallelHev {
    ParallelHev::new(HevParams::default_parallel_hev(), 0.6).expect("valid defaults")
}

#[test]
fn controller_accepts_stacked_predictors() {
    // Horizon over an ensemble of EWMA + moving average — the composed
    // predictor drives the controller's prediction state end to end.
    let predictor = Horizon::new(
        Ensemble::new(Ewma::new(0.3), MovingAverage::new(8), 0.05),
        5,
    );
    let mut agent = JointController::with_predictor(JointControllerConfig::proposed(), predictor);
    let mut vehicle = hev();
    let cycle = StandardCycle::Oscar.cycle();
    agent.train(&mut vehicle, &cycle, 5);
    let m = agent.evaluate(&mut vehicle, &cycle);
    assert_eq!(m.steps, cycle.len());
    assert!((0.40..=0.80).contains(&m.soc_final));
}

#[test]
fn controller_accepts_markov_horizon() {
    let predictor = Horizon::new(MarkovChain::new(-40_000.0, 60_000.0, 12), 3);
    let mut agent = JointController::with_predictor(JointControllerConfig::proposed(), predictor);
    let mut vehicle = hev();
    let cycle = StandardCycle::Oscar.cycle();
    agent.train(&mut vehicle, &cycle, 3);
    assert!(agent.learner().q().coverage() > 0);
}

#[test]
fn snapshot_then_policy_export_roundtrip() {
    let mut agent = JointController::new(JointControllerConfig::proposed());
    let mut vehicle = hev();
    let cycle = StandardCycle::Oscar.cycle();
    agent.train(&mut vehicle, &cycle, 20);

    // Snapshot → JSON → restore → the exported policy map is identical.
    let table_before = PolicyTable::extract(&agent, 0.6, 10, 10);
    let json = serde_json::to_string(&agent.snapshot()).expect("serializes");
    let restored =
        JointController::from_snapshot(serde_json::from_str(&json).expect("deserializes"));
    let table_after = PolicyTable::extract(&restored, 0.6, 10, 10);
    assert_eq!(table_before.cells, table_after.cells);
    assert!(table_before.coverage() > 0.0);
    // The rendered map has one glyph per cell.
    let art = table_before.render_ascii();
    assert_eq!(art.lines().count(), 10);
}

#[test]
fn exported_policy_discharges_under_high_demand_when_charged() {
    // Qualitative sanity of the learned map: in visited cells at high
    // positive demand the policy should not be strongly charging.
    let mut agent = JointController::new(JointControllerConfig::proposed());
    let mut vehicle = hev();
    let cycle = StandardCycle::Udds.cycle();
    agent.train(&mut vehicle, &cycle, 60);
    let table = PolicyTable::extract(&agent, 0.7, 12, 12);
    let mut high_demand_currents = Vec::new();
    for (d_idx, row) in table.cells.iter().enumerate() {
        if table.demands_w[d_idx] > 20_000.0 {
            high_demand_currents.extend(row.iter().flatten().copied());
        }
    }
    if !high_demand_currents.is_empty() {
        let mean: f64 =
            high_demand_currents.iter().sum::<f64>() / high_demand_currents.len() as f64;
        assert!(
            mean > -20.0,
            "policy strongly charges under high demand: mean {mean} A"
        );
    }
}
