//! Cross-crate integration tests: the full pipeline from driving cycle
//! through vehicle model, predictor, and RL controller.

use std::sync::OnceLock;

use hev_joint_control::control::{
    simulate, ControllerSnapshot, EcmsController, EpisodeMetrics, JointController,
    JointControllerConfig, RewardConfig, RuleBasedController,
};
use hev_joint_control::cycle::{
    MicroTripConfig, MicroTripGenerator, ProfileBuilder, StandardCycle,
};
use hev_joint_control::model::{HevParams, ParallelHev};

fn hev() -> ParallelHev {
    ParallelHev::new(HevParams::default_parallel_hev(), 0.6).expect("valid defaults")
}

fn quick_rl_config() -> JointControllerConfig {
    let mut c = JointControllerConfig::proposed();
    c.state = hev_joint_control::control::StateSpaceConfig {
        power_demand: hev_joint_control::rl::UniformGrid::new(-30_000.0, 50_000.0, 8),
        speed: hev_joint_control::rl::UniformGrid::new(0.0, 35.0, 6),
        charge: hev_joint_control::rl::UniformGrid::new(0.4, 0.8, 6),
        prediction: Some(hev_joint_control::rl::UniformGrid::new(
            -15_000.0, 30_000.0, 3,
        )),
    };
    c
}

/// The expensive fixture — a quick-config controller trained 80 episodes
/// on OSCAR — trained exactly once and shared by every test that needs a
/// trained policy. Tests rehydrate a private copy via
/// [`JointController::from_snapshot`], so sharing cannot leak mutable
/// state between them.
fn trained_oscar() -> &'static (Vec<EpisodeMetrics>, ControllerSnapshot) {
    static TRAINED: OnceLock<(Vec<EpisodeMetrics>, ControllerSnapshot)> = OnceLock::new();
    TRAINED.get_or_init(|| {
        let cycle = StandardCycle::Oscar.cycle();
        let mut vehicle = hev();
        let mut agent = JointController::new(quick_rl_config());
        let learning = agent.train(&mut vehicle, &cycle, 80);
        (learning, agent.snapshot())
    })
}

#[test]
fn rule_based_completes_every_standard_cycle() {
    for sc in StandardCycle::all() {
        let mut vehicle = hev();
        let mut controller = RuleBasedController::default();
        let cycle = sc.cycle();
        let m = simulate(
            &mut vehicle,
            &cycle,
            &mut controller,
            &RewardConfig::default(),
        );
        assert_eq!(m.steps, cycle.len(), "{sc}");
        assert!(
            (0.40..=0.80).contains(&m.soc_final),
            "{sc}: soc {}",
            m.soc_final
        );
        assert!(m.fuel_g > 0.0, "{sc}");
        // Fallbacks should be the exception, not the rule.
        assert!(
            m.fallback_steps < m.steps / 5,
            "{sc}: {} fallbacks in {} steps",
            m.fallback_steps,
            m.steps
        );
    }
}

#[test]
fn ecms_completes_the_paper_cycles() {
    for sc in StandardCycle::paper_set() {
        let mut vehicle = hev();
        let mut controller = EcmsController::default();
        let cycle = sc.cycle();
        let m = simulate(
            &mut vehicle,
            &cycle,
            &mut controller,
            &RewardConfig::default(),
        );
        assert_eq!(m.steps, cycle.len(), "{sc}");
        assert!((0.40..=0.80).contains(&m.soc_final), "{sc}");
    }
}

#[test]
fn joint_rl_learns_oscar_beyond_exploration() {
    let corrected = |m: &hev_joint_control::control::EpisodeMetrics| {
        m.fuel_g - (m.soc_final - m.soc_initial) * 7_800.0 * 3_600.0 / (0.28 * 42_600.0)
    };
    let cycle = StandardCycle::Oscar.cycle();
    let (learning, snapshot) = trained_oscar();
    let mut vehicle = hev();
    let mut agent = JointController::from_snapshot(snapshot.clone());
    let trained = agent.evaluate(&mut vehicle, &cycle);
    // The greedy policy must beat the exploration-heavy early episodes
    // on the charge-corrected fuel objective. (An *untrained* controller
    // evaluates as the strong myopic inner-opt policy, so "beats
    // untrained self" is not the right learning check.)
    let early: f64 = learning[..5].iter().map(&corrected).sum::<f64>() / 5.0;
    assert!(
        corrected(&trained) < early,
        "greedy {} g did not beat early exploration {} g",
        corrected(&trained),
        early
    );
}

#[test]
fn trained_rl_is_charge_window_safe() {
    // Evaluate the shared OSCAR-trained policy on SC03: the charge window
    // must hold even on a cycle the controller never trained on.
    let cycle = StandardCycle::Sc03.cycle();
    let mut vehicle = hev();
    let mut agent = JointController::from_snapshot(trained_oscar().1.clone());
    let m = agent.evaluate(&mut vehicle, &cycle);
    assert!((0.40..=0.80).contains(&m.soc_final));
    assert_eq!(m.steps, cycle.len());
}

#[test]
fn rl_generalizes_across_random_cycles() {
    // Train on a portfolio of randomized urban cycles, evaluate on a
    // held-out one: the controller must at least complete it safely and
    // use electric drive.
    let mut generator = MicroTripGenerator::new(MicroTripConfig::urban(), 4242);
    let cycles = generator.generate_batch("train", 3);
    let held_out = generator.generate("held-out");
    let mut vehicle = hev();
    let mut agent = JointController::new(quick_rl_config());
    agent.train_portfolio(&mut vehicle, &cycles, 10);
    let m = agent.evaluate(&mut vehicle, &held_out);
    assert_eq!(m.steps, held_out.len());
    assert!((0.40..=0.80).contains(&m.soc_final));
}

#[test]
fn powertrain_only_baseline_runs_and_pins_aux() {
    let cycle = StandardCycle::Oscar.cycle();
    let mut vehicle = hev();
    let mut cfg = JointControllerConfig::powertrain_only(600.0);
    cfg.state = quick_rl_config().state;
    cfg.state.prediction = None;
    let mut agent = JointController::new(cfg);
    agent.train(&mut vehicle, &cycle, 20);
    let m = agent.evaluate(&mut vehicle, &cycle);
    // Aux pinned at the preferred power ⇒ peak utility (0) every step.
    assert!(m.mean_utility().abs() < 1e-9);
}

#[test]
fn fuel_conservation_against_distance() {
    // Sanity: fuel economy of any sane controller on a mixed cycle lies
    // in a physically plausible band for a 1.35 t parallel HEV.
    let cycle = ProfileBuilder::new("mixed")
        .idle(5.0)
        .trip(50.0, 14.0, 60.0, 11.0, 8.0)
        .trip(90.0, 25.0, 120.0, 20.0, 5.0)
        .trip(35.0, 10.0, 30.0, 9.0, 10.0)
        .build()
        .expect("profile is non-empty");
    let mut vehicle = hev();
    let mut controller = RuleBasedController::default();
    let m = simulate(
        &mut vehicle,
        &cycle,
        &mut controller,
        &RewardConfig::default(),
    );
    let mpg = m.soc_corrected_mpg(7_800.0, 0.28, 42_600.0);
    assert!(
        (25.0..120.0).contains(&mpg),
        "implausible fuel economy {mpg} mpg"
    );
}

#[test]
fn reward_accumulation_matches_metrics() {
    // The cumulative paper reward must equal Σ(−ṁ_f + w·u)·ΔT computed
    // from the same run's totals when utility is constant at its peak.
    let cycle = StandardCycle::Oscar.cycle();
    let mut vehicle = hev();
    let mut controller = RuleBasedController::default();
    let reward = RewardConfig::default();
    let m = simulate(&mut vehicle, &cycle, &mut controller, &reward);
    let expected = -m.fuel_g + reward.aux_weight * m.utility_sum;
    assert!(
        (m.total_reward - expected).abs() < 1e-6,
        "reward {} vs reconstructed {}",
        m.total_reward,
        expected
    );
}

#[test]
fn soc_trajectory_continuity() {
    // Each step's soc_before must equal the previous step's soc_after:
    // verified indirectly via initial/final bookkeeping on two chained
    // simulations without reset.
    let cycle = StandardCycle::Oscar.cycle();
    let mut vehicle = hev();
    let mut controller = RuleBasedController::default();
    let reward = RewardConfig::default();
    let m1 = simulate(&mut vehicle, &cycle, &mut controller, &reward);
    let m2 = simulate(&mut vehicle, &cycle, &mut controller, &reward);
    assert_eq!(m1.soc_final, m2.soc_initial);
}
