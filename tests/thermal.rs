//! Integration tests of the optional battery thermal model across the
//! full stack.

use hev_joint_control::control::{simulate, RewardConfig, RuleBasedController};
use hev_joint_control::cycle::StandardCycle;
use hev_joint_control::model::{BatteryThermalParams, HevParams, ParallelHev};

fn hev_with_thermal(initial_c: f64) -> ParallelHev {
    let mut params = HevParams::default_parallel_hev();
    params.battery.thermal = Some(BatteryThermalParams {
        initial_c,
        ..BatteryThermalParams::default()
    });
    ParallelHev::new(params, 0.6).expect("valid params")
}

#[test]
fn cold_pack_draws_more_current_for_the_same_ev_step() {
    // The same EV launch from a −20 °C pack (1.9× resistance) must draw
    // more current — the extra resistive loss has to come from somewhere.
    use hev_joint_control::model::ControlInput;
    let warm = hev_with_thermal(25.0);
    let cold = hev_with_thermal(-20.0);
    let control = ControlInput {
        battery_current_a: 30.0,
        gear: 0,
        p_aux_w: 600.0,
    };
    let d_warm = warm.demand(3.0, 0.3, 0.0);
    let o_warm = warm.peek(&d_warm, &control, 1.0).unwrap();
    let d_cold = cold.demand(3.0, 0.3, 0.0);
    let o_cold = cold.peek(&d_cold, &control, 1.0).unwrap();
    assert_eq!(o_warm.mode, o_cold.mode);
    assert!(
        o_cold.battery_current_a > o_warm.battery_current_a,
        "cold {} A vs warm {} A",
        o_cold.battery_current_a,
        o_warm.battery_current_a
    );
}

#[test]
fn pack_warms_over_a_drive() {
    let cycle = StandardCycle::Udds.cycle();
    let mut vehicle = hev_with_thermal(-10.0);
    let mut rule = RuleBasedController::default();
    simulate(&mut vehicle, &cycle, &mut rule, &RewardConfig::default());
    let t = vehicle.battery().temperature_c().expect("thermal enabled");
    assert!(t > -10.0, "pack stayed at {t} °C");
    assert!(t < 60.0, "pack implausibly hot: {t} °C");
}

#[test]
fn thermal_disabled_matches_baseline_exactly() {
    // With `thermal: None` the behaviour must be bit-identical to the
    // calibrated baseline — guarding against accidental coupling.
    let cycle = StandardCycle::Oscar.cycle();
    let reward = RewardConfig::default();
    let mut plain = ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap();
    let mut rule = RuleBasedController::default();
    let m_plain = simulate(&mut plain, &cycle, &mut rule, &reward);

    let mut params = HevParams::default_parallel_hev();
    params.battery.thermal = None;
    let mut explicit = ParallelHev::new(params, 0.6).unwrap();
    let mut rule = RuleBasedController::default();
    let m_explicit = simulate(&mut explicit, &cycle, &mut rule, &reward);
    assert_eq!(m_plain.fuel_g, m_explicit.fuel_g);
    assert_eq!(m_plain.total_reward, m_explicit.total_reward);
}

#[test]
fn reset_soc_also_resets_temperature() {
    let cycle = StandardCycle::Oscar.cycle();
    let mut vehicle = hev_with_thermal(-5.0);
    let mut rule = RuleBasedController::default();
    simulate(&mut vehicle, &cycle, &mut rule, &RewardConfig::default());
    assert_ne!(vehicle.battery().temperature_c(), Some(-5.0));
    vehicle.reset_soc(0.6);
    assert_eq!(vehicle.battery().temperature_c(), Some(-5.0));
}
