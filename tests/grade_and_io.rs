//! Integration tests for road grade and cycle I/O across the stack.

use hev_joint_control::control::{simulate, RewardConfig, RuleBasedController};
use hev_joint_control::cycle::{io, DriveCycle, StandardCycle};
use hev_joint_control::model::{HevParams, ParallelHev};

fn hev() -> ParallelHev {
    ParallelHev::new(HevParams::default_parallel_hev(), 0.6).expect("valid defaults")
}

fn corrected(m: &hev_joint_control::control::EpisodeMetrics) -> f64 {
    m.fuel_g - (m.soc_final - m.soc_initial) * 7_800.0 * 3_600.0 / (0.28 * 42_600.0)
}

#[test]
fn climbing_costs_fuel() {
    // A sustained 4 % climb at cruise must cost clearly more than the
    // same cruise on flat road (potential energy has to come from fuel).
    let n = 300;
    let speeds = vec![15.0; n];
    let flat = DriveCycle::from_speeds_mps("cruise", 1.0, speeds.clone()).unwrap();
    let climb = DriveCycle::with_grade("climb", 1.0, speeds, vec![0.04; n]).unwrap();
    let reward = RewardConfig::default();

    let mut hev_flat = hev();
    let mut rule = RuleBasedController::default();
    let m_flat = simulate(&mut hev_flat, &flat, &mut rule, &reward);
    let mut hev_climb = hev();
    let mut rule = RuleBasedController::default();
    let m_climb = simulate(&mut hev_climb, &climb, &mut rule, &reward);

    // Expected extra ≈ m·g·sinθ·distance / (η·LHV) ≈ 140 g; demand at
    // least half of it shows up after charge correction.
    assert!(
        corrected(&m_climb) > corrected(&m_flat) + 70.0,
        "climb {} g vs flat {} g",
        corrected(&m_climb),
        corrected(&m_flat)
    );
}

#[test]
fn rolling_hills_are_handled_cleanly() {
    // Rolling terrain (even steep) must simulate without fallbacks or
    // trace misses, stay inside the charge window, and keep fuel within
    // a plausible band of the flat run. (Mild hills can legitimately
    // *improve* economy: they shift the engine into better efficiency
    // regions and regeneration recovers the descents.)
    let flat = StandardCycle::Oscar.cycle();
    let m_flat = {
        let mut v = hev();
        let mut rule = RuleBasedController::default();
        simulate(&mut v, &flat, &mut rule, &RewardConfig::default())
    };
    for peak in [0.02, 0.06, 0.10] {
        let hilly = flat.with_rolling_grade(peak, 600.0);
        let mut v = hev();
        let mut rule = RuleBasedController::default();
        let m = simulate(&mut v, &hilly, &mut rule, &RewardConfig::default());
        assert_eq!(m.trace_miss_steps, 0, "peak {peak}");
        assert!((0.40..=0.80).contains(&m.soc_final), "peak {peak}");
        let rel = corrected(&m) / corrected(&m_flat);
        assert!((0.7..1.4).contains(&rel), "peak {peak}: fuel ratio {rel}");
    }
}

#[test]
fn steep_downhill_forces_braking_modes() {
    // A sustained 8 % downhill at constant speed demands negative wheel
    // torque even without decelerating.
    let speeds = vec![15.0; 120];
    let grade = vec![-0.08; 120];
    let cycle = DriveCycle::with_grade("downhill", 1.0, speeds, grade).unwrap();
    let mut vehicle = hev();
    let mut rule = RuleBasedController::default();
    let m = simulate(&mut vehicle, &cycle, &mut rule, &RewardConfig::default());
    use hev_joint_control::model::OperatingMode;
    let braking = m.mode_counts
        [hev_joint_control::control::mode_index(OperatingMode::RegenBraking)]
        + m.mode_counts[hev_joint_control::control::mode_index(OperatingMode::FrictionBraking)];
    assert!(
        braking > 100,
        "only {braking} braking steps on a steep descent"
    );
    // Riding the hill should have charged the pack.
    assert!(m.soc_final > m.soc_initial);
    assert_eq!(m.fuel_g, 0.0);
}

#[test]
fn csv_cycle_survives_full_simulation() {
    let original = StandardCycle::Sc03.cycle();
    let path = std::env::temp_dir().join("sc03_roundtrip.csv");
    io::write_csv(&original, &path).expect("write");
    let restored = io::read_csv(&path).expect("read");
    let _ = std::fs::remove_file(&path);

    let reward = RewardConfig::default();
    let mut hev_a = hev();
    let mut rule = RuleBasedController::default();
    let m_a = simulate(&mut hev_a, &original, &mut rule, &reward);
    let mut hev_b = hev();
    let mut rule = RuleBasedController::default();
    let m_b = simulate(&mut hev_b, &restored, &mut rule, &reward);
    assert_eq!(m_a.steps, m_b.steps);
    assert!((m_a.fuel_g - m_b.fuel_g).abs() < 1e-6);
}
